//! Residual-program cleanup passes.
//!
//! Partial evaluation leaves syntactic residue: `let`s binding trivial or
//! unused expressions, conditionals with constant tests produced late, and
//! branches that turned out identical. This module provides a small,
//! semantics-preserving optimizer over [`Expr`]/[`Program`].
//!
//! Strictness makes dead-code elimination delicate: a bound expression may
//! diverge or error, and dropping it would change behaviour. The default
//! [`OptLevel::Safe`] therefore only drops syntactically total expressions
//! (constants, variables, function references, lambdas).
//! [`OptLevel::PureArith`] additionally treats arithmetic, comparison and
//! boolean primitives as droppable — which forgets *error* outcomes
//! (overflow, type errors) of dead code, a trade-off real compilers make;
//! it never touches division, vector operations, or calls.

use crate::ast::Expr;
use crate::prim::Prim;
use crate::program::Program;
use crate::symbol::Symbol;
use crate::term::{Term, TermNode};

/// How aggressively dead code may be removed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OptLevel {
    /// Never drop an expression that could diverge or error.
    #[default]
    Safe,
    /// Additionally treat pure arithmetic/logic primitives as droppable
    /// (forgets error outcomes of dead code; see the module docs).
    PureArith,
}

/// Applies the cleanup passes to every definition of a program until a
/// fixed point (bounded), returning the optimized program.
///
/// # Examples
///
/// ```
/// use ppe_lang::{optimize_program, parse_program, pretty_program, OptLevel};
///
/// let p = parse_program("(define (f x) (let ((dead 42)) (if #t x 0)))")?;
/// let o = optimize_program(&p, OptLevel::Safe);
/// assert_eq!(pretty_program(&o).trim(), "(define (f x) x)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize_program(program: &Program, level: OptLevel) -> Program {
    let defs = program
        .defs()
        .iter()
        .map(|d| {
            // The passes run over interned terms: the fixpoint test is a
            // pointer comparison, binder-use counts come from each node's
            // cached occurrence data, and unchanged subtrees are reused
            // rather than re-allocated.
            let mut body = Term::from_expr(&d.body);
            for _ in 0..8 {
                let next = optimize_term(&body, level);
                if next == body {
                    break;
                }
                body = next;
            }
            crate::program::FunDef::new(d.name, d.params.clone(), body.to_expr())
        })
        .collect();
    // Optimization rewrites bodies only, so the def list always rebuilds;
    // if that invariant ever breaks, returning the source unoptimized is
    // strictly safer than aborting.
    Program::new(defs).unwrap_or_else(|_| program.clone())
}

/// One bottom-up cleanup pass over an expression.
///
/// Convenience wrapper over [`optimize_term`] for tree-shaped callers; the
/// pipeline-facing entry point is [`optimize_program`].
pub fn optimize_expr(e: &Expr, level: OptLevel) -> Expr {
    optimize_term(&Term::from_expr(e), level).to_expr()
}

/// One bottom-up cleanup pass over an interned term.
pub fn optimize_term(e: &Term, level: OptLevel) -> Term {
    /// Rebuilds a node only when some child actually changed, keeping the
    /// canonical pointer (and the fixpoint test O(1)) otherwise.
    fn map_args(args: &[Term], level: OptLevel) -> (Vec<Term>, bool) {
        let mut changed = false;
        let out = args
            .iter()
            .map(|a| {
                let o = optimize_term(a, level);
                changed |= o != *a;
                o
            })
            .collect();
        (out, changed)
    }
    match e.node() {
        TermNode::Const(_) | TermNode::Var(_) | TermNode::FnRef(_) => e.clone(),
        TermNode::Prim(p, args) => {
            let (args, changed) = map_args(args, level);
            if changed {
                Term::prim(*p, args)
            } else {
                e.clone()
            }
        }
        TermNode::Call(f, args) => {
            let (args, changed) = map_args(args, level);
            if changed {
                Term::call(*f, args)
            } else {
                e.clone()
            }
        }
        TermNode::App(f, args) => {
            let f = optimize_term(f, level);
            let (args, _) = map_args(args, level);
            Term::app(f, args)
        }
        TermNode::Lambda(params, body) => {
            let opt = optimize_term(body, level);
            if opt == *body {
                e.clone()
            } else {
                Term::lambda(params.clone(), opt)
            }
        }
        TermNode::If(c, t, f) => {
            let c = optimize_term(c, level);
            let t = optimize_term(t, level);
            let f = optimize_term(f, level);
            // Constant tests fold.
            if let TermNode::Const(cc) = c.node() {
                if let Some(b) = cc.as_bool() {
                    return if b { t } else { f };
                }
            }
            // Identical branches collapse (a pointer comparison on
            // interned terms); the test is kept (sequenced) unless it is
            // droppable.
            if t == f {
                return if is_droppable_term(&c, level) {
                    t
                } else {
                    // A binder name not free in the branch (so nothing is
                    // accidentally shadowed).
                    let mut name = Symbol::intern("_cond");
                    let mut n = 0;
                    while t.has_free(name) {
                        n += 1;
                        name = Symbol::intern(&format!("_cond{n}"));
                    }
                    Term::let_(name, c, t)
                };
            }
            Term::if_(c, t, f)
        }
        TermNode::Let(x, b, body) => {
            let b = optimize_term(b, level);
            let body = optimize_term(body, level);
            // Unused binding of a droppable expression: delete. The use
            // count is the node's cached occurrence datum, not a
            // traversal.
            if !body.has_free(*x) && is_droppable_term(&b, level) {
                return body;
            }
            // Trivial binding (constant/variable): substitute away.
            if matches!(
                b.node(),
                TermNode::Const(_) | TermNode::Var(_) | TermNode::FnRef(_)
            ) {
                return substitute_term(&body, *x, &b);
            }
            // Used exactly once, in a position we can safely inline into?
            // Inlining changes evaluation order in general; skip (the
            // specializers already bind through `let` deliberately).
            Term::let_(*x, b, body)
        }
    }
}

/// True if evaluating `e` can neither diverge, nor error, nor do anything
/// observable — at the given trust level.
///
/// Public because this is *the* definition of "droppable": the analyzer's
/// dead-code diagnostics (`ppe check`'s occurrence pass) and the
/// optimizer's dead-code elimination must agree, so both call this one
/// predicate.
pub fn is_droppable(e: &Expr, level: OptLevel) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) | Expr::Lambda(..) => true,
        Expr::Prim(p, args) => {
            level == OptLevel::PureArith
                && pure_arith(*p)
                && args.iter().all(|a| is_droppable(a, level))
        }
        Expr::If(c, t, f) => {
            is_droppable(c, level) && is_droppable(t, level) && is_droppable(f, level)
        }
        Expr::Let(_, b, body) => is_droppable(b, level) && is_droppable(body, level),
        // Calls may diverge; applications may be anything.
        Expr::Call(..) | Expr::App(..) => false,
    }
}

/// [`is_droppable`] over interned terms (same definition, no conversion).
pub fn is_droppable_term(e: &Term, level: OptLevel) -> bool {
    match e.node() {
        TermNode::Const(_) | TermNode::Var(_) | TermNode::FnRef(_) | TermNode::Lambda(..) => true,
        TermNode::Prim(p, args) => {
            level == OptLevel::PureArith
                && pure_arith(*p)
                && args.iter().all(|a| is_droppable_term(a, level))
        }
        TermNode::If(c, t, f) => {
            is_droppable_term(c, level)
                && is_droppable_term(t, level)
                && is_droppable_term(f, level)
        }
        TermNode::Let(_, b, body) => is_droppable_term(b, level) && is_droppable_term(body, level),
        // Calls may diverge; applications may be anything.
        TermNode::Call(..) | TermNode::App(..) => false,
    }
}

/// Primitives [`OptLevel::PureArith`] treats as droppable. Division,
/// remainder and vector operations are never droppable (their failure
/// modes are the common ones).
fn pure_arith(p: Prim) -> bool {
    matches!(
        p,
        Prim::Add
            | Prim::Sub
            | Prim::Mul
            | Prim::Neg
            | Prim::Eq
            | Prim::Ne
            | Prim::Lt
            | Prim::Le
            | Prim::Gt
            | Prim::Ge
            | Prim::And
            | Prim::Or
            | Prim::Not
    )
}

/// Occurrence count of `x` in `e` (free occurrences only).
///
/// Shared with the analyzer's occurrence pass for the same reason as
/// [`is_droppable`]: one definition of "used".
pub fn count_uses(e: &Expr, x: Symbol) -> usize {
    match e {
        Expr::Const(_) | Expr::FnRef(_) => 0,
        Expr::Var(v) => usize::from(*v == x),
        Expr::Prim(_, args) | Expr::Call(_, args) => args.iter().map(|a| count_uses(a, x)).sum(),
        Expr::If(c, t, f) => count_uses(c, x) + count_uses(t, x) + count_uses(f, x),
        Expr::Let(y, b, body) => count_uses(b, x) + if *y == x { 0 } else { count_uses(body, x) },
        Expr::Lambda(params, body) => {
            if params.contains(&x) {
                0
            } else {
                count_uses(body, x)
            }
        }
        Expr::App(f, args) => {
            count_uses(f, x) + args.iter().map(|a| count_uses(a, x)).sum::<usize>()
        }
    }
}

/// Capture-avoiding substitution of a *closed-ish* replacement (constants,
/// variables, function references — which cannot capture) for `x`, with an
/// O(1) short-circuit on subterms where `x` does not occur free.
fn substitute_term(e: &Term, x: Symbol, replacement: &Term) -> Term {
    // No free occurrence of `x` anywhere below: the tree-walking version
    // would rebuild an identical term, so the original can be returned
    // directly. This is the memoization that makes the optimizer's
    // substitution passes cheap on large residuals.
    if !e.has_free(x) {
        return e.clone();
    }
    match e.node() {
        TermNode::Const(_) | TermNode::FnRef(_) => e.clone(),
        TermNode::Var(v) => {
            if *v == x {
                replacement.clone()
            } else {
                e.clone()
            }
        }
        TermNode::Prim(p, args) => Term::prim(
            *p,
            args.iter()
                .map(|a| substitute_term(a, x, replacement))
                .collect(),
        ),
        TermNode::Call(f, args) => Term::call(
            *f,
            args.iter()
                .map(|a| substitute_term(a, x, replacement))
                .collect(),
        ),
        TermNode::If(c, t, f) => Term::if_(
            substitute_term(c, x, replacement),
            substitute_term(t, x, replacement),
            substitute_term(f, x, replacement),
        ),
        TermNode::Let(y, b, body) => {
            let b = substitute_term(b, x, replacement);
            // Shadowing stops the substitution; a Var replacement equal to
            // `y` would be captured, so stop there too.
            let shadows = *y == x || matches!(replacement.node(), TermNode::Var(r) if r == y);
            let body = if shadows {
                body.clone()
            } else {
                substitute_term(body, x, replacement)
            };
            Term::let_(*y, b, body)
        }
        TermNode::Lambda(params, body) => {
            let captured = params.contains(&x)
                || matches!(replacement.node(), TermNode::Var(r) if params.contains(r));
            if captured {
                e.clone()
            } else {
                Term::lambda(params.clone(), substitute_term(body, x, replacement))
            }
        }
        TermNode::App(f, args) => Term::app(
            substitute_term(f, x, replacement),
            args.iter()
                .map(|a| substitute_term(a, x, replacement))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};
    use crate::pretty::pretty_expr;

    fn opt(src: &str, level: OptLevel) -> String {
        let e = parse_expr(src).unwrap();
        let mut out = e;
        for _ in 0..8 {
            let next = optimize_expr(&out, level);
            if next == out {
                break;
            }
            out = next;
        }
        pretty_expr(&out)
    }

    #[test]
    fn constant_ifs_fold() {
        assert_eq!(opt("(if #t 1 2)", OptLevel::Safe), "1");
        assert_eq!(opt("(if #f 1 2)", OptLevel::Safe), "2");
    }

    #[test]
    fn identical_branches_collapse() {
        // Droppable test: gone entirely.
        assert_eq!(opt("(if b 7 7)", OptLevel::Safe), "7");
        // Possibly-failing test: kept, sequenced.
        assert_eq!(
            opt("(if (< (/ 1 x) 0) 7 7)", OptLevel::Safe),
            "(let ((_cond (< (/ 1 x) 0))) 7)"
        );
    }

    #[test]
    fn trivial_lets_substitute() {
        assert_eq!(opt("(let ((a x)) (+ a a))", OptLevel::Safe), "(+ x x)");
        assert_eq!(opt("(let ((a 3)) (+ a y))", OptLevel::Safe), "(+ 3 y)");
    }

    #[test]
    fn unused_safe_lets_drop() {
        assert_eq!(opt("(let ((a x)) 5)", OptLevel::Safe), "5");
        // Arithmetic is only droppable at PureArith.
        assert_eq!(
            opt("(let ((a (+ x 1))) 5)", OptLevel::Safe),
            "(let ((a (+ x 1))) 5)"
        );
        assert_eq!(opt("(let ((a (+ x 1))) 5)", OptLevel::PureArith), "5");
        // Division is never droppable.
        assert_eq!(
            opt("(let ((a (/ x 2))) 5)", OptLevel::PureArith),
            "(let ((a (/ x 2))) 5)"
        );
    }

    #[test]
    fn substitution_respects_shadowing() {
        // a := x must not reach under (let ((a …))).
        assert_eq!(opt("(let ((a x)) (let ((a 1)) a))", OptLevel::Safe), "1");
        // Capture check: a := y, with an inner binder y. The inner
        // constant binding folds first, after which a := y is free to
        // substitute — the result must mean "outer y + 1", never the
        // captured "(+ 1 1)" or "(+ y y)" under a rebound y.
        assert_eq!(
            opt("(let ((a y)) (let ((y 1)) (+ a y)))", OptLevel::Safe),
            "(+ y 1)"
        );
        // Direct capture test on `substitute_term` itself: replacing a := y
        // must stop at a λ binding y.
        let body = Term::from_expr(&parse_expr("(lambda (y) (+ a y))").unwrap());
        let replaced = substitute_term(
            &body,
            crate::Symbol::intern("a"),
            &Term::var(crate::Symbol::intern("y")),
        );
        assert_eq!(replaced, body, "substitution must refuse to capture");
    }

    #[test]
    fn programs_optimize_whole() {
        let p = parse_program("(define (f x) (let ((u x)) (if (= 1 1) (+ u 0) 9)))").unwrap();
        let o = optimize_program(&p, OptLevel::Safe);
        // (= 1 1) is a constant? No — it is a prim application; the online
        // PE folds those, not this cleanup. But the let substitutes.
        let printed = crate::pretty::pretty_program(&o);
        assert!(printed.contains("(+ x 0)"), "{printed}");
    }

    #[test]
    fn optimization_preserves_semantics_on_samples() {
        use crate::eval::Evaluator;
        use crate::value::Value;
        let p = parse_program(
            "(define (f x) (let ((a (+ x 1))) (let ((b a)) (if (< b b) 0 (* b 2)))))",
        )
        .unwrap();
        let o = optimize_program(&p, OptLevel::PureArith);
        for x in [-4i64, 0, 9] {
            let a = Evaluator::new(&p).run_main(&[Value::Int(x)]).unwrap();
            let b = Evaluator::new(&o).run_main(&[Value::Int(x)]).unwrap();
            assert_eq!(a, b, "x = {x}");
        }
    }
}

/// Removes unused parameters from non-entry definitions, adjusting every
/// call site — the cleanup that erases fully-consumed inputs (e.g. a
/// static pattern or bytecode vector) from specialized residual functions.
///
/// A parameter of a non-entry definition is removed only when it is unused
/// in the body *and* every call site passes a droppable argument at that
/// position (per [`OptLevel`]; dropping an effectful argument would change
/// strictness). Functions referenced as values (`FnRef`) are left alone —
/// their arity is observable. Entry parameters that end up unused are also
/// dropped, matching the specializers' convention for residual entry
/// points (callers adapt).
///
/// # Examples
///
/// ```
/// use ppe_lang::{parse_program, pretty_program, prune_unused_params, OptLevel};
///
/// let p = parse_program(
///     "(define (main s) (scan s 1))
///      (define (scan s k) (if (< k (vsize s)) (scan s (+ k 1)) k))",
/// )?;
/// // `scan` genuinely reads both parameters: nothing changes.
/// let pruned = prune_unused_params(&p, OptLevel::Safe);
/// assert_eq!(pretty_program(&pruned), pretty_program(&p));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn prune_unused_params(program: &Program, level: OptLevel) -> Program {
    use std::collections::HashSet;

    let mut defs: Vec<crate::program::FunDef> = program.defs().to_vec();

    // Functions whose arity is observable through first-class references.
    let mut referenced: HashSet<Symbol> = HashSet::new();
    fn collect_fnrefs(e: &Expr, out: &mut HashSet<Symbol>) {
        match e {
            Expr::FnRef(f) => {
                out.insert(*f);
            }
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Prim(_, args) | Expr::Call(_, args) => {
                args.iter().for_each(|a| collect_fnrefs(a, out));
            }
            Expr::If(a, b, c) => {
                collect_fnrefs(a, out);
                collect_fnrefs(b, out);
                collect_fnrefs(c, out);
            }
            Expr::Let(_, a, b) => {
                collect_fnrefs(a, out);
                collect_fnrefs(b, out);
            }
            Expr::Lambda(_, b) => collect_fnrefs(b, out),
            Expr::App(f, args) => {
                collect_fnrefs(f, out);
                args.iter().for_each(|a| collect_fnrefs(a, out));
            }
        }
    }
    for d in &defs {
        collect_fnrefs(&d.body, &mut referenced);
    }

    // Greatest-fixpoint liveness: optimistically assume every non-entry,
    // non-referenced position with droppable call arguments is dead; a
    // position becomes live when its parameter is used *outside* the
    // argument slots of dead positions (so a parameter threaded only into
    // its own dead position stays dead).
    let mut dead: HashSet<(Symbol, usize)> = HashSet::new();
    for d in defs.iter().skip(1) {
        if referenced.contains(&d.name) {
            continue;
        }
        for i in 0..d.params.len() {
            if all_call_args_droppable(&defs, d.name, i, level) {
                dead.insert((d.name, i));
            }
        }
    }
    loop {
        let mut changed = false;
        for d in &defs {
            for (i, p) in d.params.iter().enumerate() {
                if !dead.contains(&(d.name, i)) {
                    continue;
                }
                if uses_outside_dead(&d.body, *p, &dead) > 0 {
                    dead.remove(&(d.name, i));
                    changed = true;
                }
            }
        }
        // Uses in *entry* and other bodies outside dead slots also keep
        // positions alive only through their own parameters; arguments at
        // live positions are untouched, so nothing else to do here.
        if !changed {
            break;
        }
    }
    if !dead.is_empty() {
        // Remove, highest positions first per function.
        let mut by_fn: std::collections::HashMap<Symbol, Vec<usize>> =
            std::collections::HashMap::new();
        for (f, i) in &dead {
            by_fn.entry(*f).or_default().push(*i);
        }
        for positions in by_fn.values_mut() {
            positions.sort_unstable_by(|a, b| b.cmp(a));
        }
        for d in &mut defs {
            d.body = drop_dead_args(&d.body, &by_fn);
            if let Some(positions) = by_fn.get(&d.name) {
                for &i in positions {
                    d.params.remove(i);
                }
            }
        }
    }

    // Finally, drop entry parameters the (pruned) entry body no longer
    // mentions — the same convention the specializers use.
    let mut free = Vec::new();
    defs[0].body.free_vars(&mut free);
    defs[0].params.retain(|p| free.contains(p));

    Program::new(defs).expect("pruning preserves program shape")
}

/// Occurrences of `x` in `e`, not counting argument slots of dead
/// positions (those arguments are about to be deleted).
fn uses_outside_dead(
    e: &Expr,
    x: Symbol,
    dead: &std::collections::HashSet<(Symbol, usize)>,
) -> usize {
    match e {
        Expr::Const(_) | Expr::FnRef(_) => 0,
        Expr::Var(v) => usize::from(*v == x),
        Expr::Prim(_, args) => args.iter().map(|a| uses_outside_dead(a, x, dead)).sum(),
        Expr::Call(g, args) => args
            .iter()
            .enumerate()
            .map(|(j, a)| {
                if dead.contains(&(*g, j)) {
                    0
                } else {
                    uses_outside_dead(a, x, dead)
                }
            })
            .sum(),
        Expr::If(a, b, c) => {
            uses_outside_dead(a, x, dead)
                + uses_outside_dead(b, x, dead)
                + uses_outside_dead(c, x, dead)
        }
        Expr::Let(y, a, b) => {
            uses_outside_dead(a, x, dead)
                + if *y == x {
                    0
                } else {
                    uses_outside_dead(b, x, dead)
                }
        }
        Expr::Lambda(params, b) => {
            if params.contains(&x) {
                0
            } else {
                uses_outside_dead(b, x, dead)
            }
        }
        Expr::App(f, args) => {
            uses_outside_dead(f, x, dead)
                + args
                    .iter()
                    .map(|a| uses_outside_dead(a, x, dead))
                    .sum::<usize>()
        }
    }
}

/// Rewrites every call, deleting arguments at dead positions.
fn drop_dead_args(e: &Expr, by_fn: &std::collections::HashMap<Symbol, Vec<usize>>) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => e.clone(),
        Expr::Prim(p, args) => {
            Expr::Prim(*p, args.iter().map(|a| drop_dead_args(a, by_fn)).collect())
        }
        Expr::Call(g, args) => {
            let mut args: Vec<Expr> = args.iter().map(|a| drop_dead_args(a, by_fn)).collect();
            if let Some(positions) = by_fn.get(g) {
                for &i in positions {
                    args.remove(i);
                }
            }
            Expr::Call(*g, args)
        }
        Expr::If(a, b, c) => Expr::If(
            Box::new(drop_dead_args(a, by_fn)),
            Box::new(drop_dead_args(b, by_fn)),
            Box::new(drop_dead_args(c, by_fn)),
        ),
        Expr::Let(x, a, b) => Expr::Let(
            *x,
            Box::new(drop_dead_args(a, by_fn)),
            Box::new(drop_dead_args(b, by_fn)),
        ),
        Expr::Lambda(ps, b) => Expr::Lambda(ps.clone(), Box::new(drop_dead_args(b, by_fn))),
        Expr::App(f, args) => Expr::App(
            Box::new(drop_dead_args(f, by_fn)),
            args.iter().map(|a| drop_dead_args(a, by_fn)).collect(),
        ),
    }
}

fn all_call_args_droppable(
    defs: &[crate::program::FunDef],
    f: Symbol,
    position: usize,
    level: OptLevel,
) -> bool {
    fn check(e: &Expr, f: Symbol, position: usize, level: OptLevel) -> bool {
        match e {
            Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => true,
            Expr::Prim(_, args) => args.iter().all(|a| check(a, f, position, level)),
            Expr::Call(g, args) => {
                let own = *g != f || is_droppable(&args[position], level);
                own && args.iter().all(|a| check(a, f, position, level))
            }
            Expr::If(a, b, c) => {
                check(a, f, position, level)
                    && check(b, f, position, level)
                    && check(c, f, position, level)
            }
            Expr::Let(_, a, b) => check(a, f, position, level) && check(b, f, position, level),
            Expr::Lambda(_, b) => check(b, f, position, level),
            Expr::App(h, args) => {
                check(h, f, position, level) && args.iter().all(|a| check(a, f, position, level))
            }
        }
    }
    defs.iter().all(|d| check(&d.body, f, position, level))
}

#[cfg(test)]
mod prune_tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty::pretty_program;

    #[test]
    fn dead_threaded_parameter_is_removed() {
        // Both `p` and `s` are only threaded into their own (dead)
        // positions: the liveness fixpoint removes them together, and only
        // `k` — genuinely read by the body — survives.
        let p = parse_program(
            "(define (main p s) (scan p s 1))
             (define (scan p s k)
               (if (< k 0) 0 (scan p s (+ k 1))))",
        )
        .unwrap();
        let pruned = prune_unused_params(&p, OptLevel::Safe);
        let printed = pretty_program(&pruned);
        assert!(printed.contains("(define (scan k)"), "{printed}");
        assert!(printed.contains("(scan 1)"), "{printed}");
        // The entry's inputs became unused too, and were dropped.
        assert!(printed.contains("(define (main)"), "{printed}");
    }

    #[test]
    fn genuinely_used_parameters_survive() {
        let p = parse_program(
            "(define (main s) (scan s 1))
             (define (scan s k) (if (< k (vsize s)) (scan s (+ k 1)) k))",
        )
        .unwrap();
        let pruned = prune_unused_params(&p, OptLevel::Safe);
        assert_eq!(pretty_program(&pruned), pretty_program(&p));
    }

    #[test]
    fn pruning_preserves_semantics() {
        use crate::eval::Evaluator;
        use crate::value::Value;
        let p = parse_program(
            "(define (main p s) (scan p s 1))
             (define (scan p s k)
               (if (< k 0) 0 (count p s (- k 1))))
             (define (count p s k) (+ k 100))",
        )
        .unwrap();
        let pruned = prune_unused_params(&p, OptLevel::Safe);
        let a = Evaluator::new(&p)
            .run_main(&[Value::Int(9), Value::Int(8)])
            .unwrap();
        // Both inputs became dead; the pruned entry takes none.
        let b = Evaluator::new(&pruned).run_main(&[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn effectful_arguments_block_pruning_at_safe_level() {
        let p = parse_program(
            "(define (main x) (g (/ 1 x) x))
             (define (g unused x) x)",
        )
        .unwrap();
        let pruned = prune_unused_params(&p, OptLevel::Safe);
        // (/ 1 x) may fail: it must keep being evaluated.
        assert_eq!(pretty_program(&pruned), pretty_program(&p));
    }

    #[test]
    fn fnref_functions_keep_their_arity() {
        let p = parse_program(
            "(define (main x) (apply1 g x))
             (define (apply1 f v) (f v 0))
             (define (g v unused) v)",
        )
        .unwrap();
        let pruned = prune_unused_params(&p, OptLevel::Safe);
        assert_eq!(pretty_program(&pruned), pretty_program(&p));
    }

    #[test]
    fn cascading_pruning_reaches_a_fixpoint() {
        // h's dead param is only dead after g's is removed.
        let p = parse_program(
            "(define (main x) (g x x))
             (define (g a b) (h a b))
             (define (h a b) a)",
        )
        .unwrap();
        let pruned = prune_unused_params(&p, OptLevel::Safe);
        let printed = pretty_program(&pruned);
        assert!(printed.contains("(define (h a)"), "{printed}");
        assert!(printed.contains("(define (g a)"), "{printed}");
    }
}
