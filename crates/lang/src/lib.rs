//! Object-language substrate for parameterized partial evaluation.
//!
//! This crate implements the first-order (plus a higher-order extension)
//! strict functional language of Consel & Khoo, *Parameterized Partial
//! Evaluation* (PLDI 1991), Figure 1: its abstract syntax, a parser for an
//! s-expression surface syntax, a pretty-printer, the value domains
//! (integers, booleans, floats, and the vector abstract data type of
//! Section 6), the primitive-operator algebra, and the standard evaluator.
//!
//! # Quick example
//!
//! ```
//! use ppe_lang::{parse_program, Evaluator, Value};
//!
//! let program = parse_program(
//!     "(define (square x) (* x x))",
//! ).unwrap();
//! let mut ev = Evaluator::new(&program);
//! let out = ev.run_main(&[Value::Int(7)]).unwrap();
//! assert_eq!(out, Value::Int(49));
//! ```
//!
//! The language is deliberately the paper's: `Exp ::= c | x | p(e…) | f(e…)
//! | if e e e` plus `let` sugar and, for Section 5.5, `lambda` and general
//! application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
pub mod diag;
mod env;
mod error;
mod eval;
mod lazy;
mod lexer;
pub mod opt;
mod parser;
mod pretty;
mod prim;
mod program;
mod symbol;
pub mod term;
mod token;
mod value;

pub use ast::{Const, Expr, F64};
pub use diag::{Diagnostic, Severity};
pub use env::Env;
pub use error::{EvalError, ParseError};
pub use eval::{Evaluator, DEFAULT_FUEL, DEFAULT_MAX_DEPTH, DEFAULT_MAX_EXPR_DEPTH};
pub use lazy::LazyEvaluator;
pub use opt::{
    count_uses, is_droppable, is_droppable_term, optimize_expr, optimize_program, optimize_term,
    prune_unused_params, OptLevel,
};
pub use parser::{parse_defs, parse_expr, parse_program};
pub use pretty::{pretty_expr, pretty_program};
pub use prim::{Prim, StdOpClass, ALL_PRIMS, MAX_VECTOR_SIZE};
pub use program::{FunDef, Program};
pub use symbol::Symbol;
pub use term::{interner_stats, InternerStats, Term, TermNode};
pub use token::Token;
pub use value::{ClosureData, Value};
