//! Persistent runtime environments (`Env = Var → Values`, Figure 1).

use std::rc::Rc;

use crate::symbol::Symbol;
use crate::value::Value;

/// A persistent (immutable, shareable) environment mapping variables to
/// values.
///
/// Extension is O(1) and does not disturb other holders, which is what the
/// recursive valuation functions of Figure 1 require, and what closures
/// (Section 5.5) capture.
///
/// # Examples
///
/// ```
/// use ppe_lang::{Env, Symbol, Value};
///
/// let base = Env::empty();
/// let x = Symbol::intern("x");
/// let inner = base.bind(x, Value::Int(1));
/// assert_eq!(inner.lookup(x), Some(&Value::Int(1)));
/// assert_eq!(base.lookup(x), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Env(Option<Rc<Node>>);

#[derive(Debug)]
struct Node {
    name: Symbol,
    value: Value,
    rest: Option<Rc<Node>>,
}

impl Env {
    /// The empty environment (`⊥` of the environment domain).
    pub fn empty() -> Env {
        Env(None)
    }

    /// Returns a new environment with `name ↦ value` added; shadows any
    /// previous binding of `name`.
    #[must_use]
    pub fn bind(&self, name: Symbol, value: Value) -> Env {
        Env(Some(Rc::new(Node {
            name,
            value,
            rest: self.0.clone(),
        })))
    }

    /// Returns a new environment extending `self` with all of `bindings`.
    #[must_use]
    pub fn bind_all<I>(&self, bindings: I) -> Env
    where
        I: IntoIterator<Item = (Symbol, Value)>,
    {
        let mut env = self.clone();
        for (name, value) in bindings {
            env = env.bind(name, value);
        }
        env
    }

    /// Looks up the innermost binding of `name`.
    pub fn lookup(&self, name: Symbol) -> Option<&Value> {
        let mut node = self.0.as_deref();
        while let Some(n) = node {
            if n.name == name {
                return Some(&n.value);
            }
            node = n.rest.as_deref();
        }
        None
    }

    /// Number of (possibly shadowed) bindings; mainly for diagnostics.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut node = self.0.as_deref();
        while let Some(x) = node {
            n += 1;
            node = x.rest.as_deref();
        }
        n
    }

    /// True if no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_bindings() {
        let e = Env::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.lookup(Symbol::intern("x")), None);
    }

    #[test]
    fn shadowing_finds_innermost() {
        let x = Symbol::intern("x");
        let e = Env::empty().bind(x, Value::Int(1)).bind(x, Value::Int(2));
        assert_eq!(e.lookup(x), Some(&Value::Int(2)));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn persistence_preserves_old_views() {
        let x = Symbol::intern("x");
        let y = Symbol::intern("y");
        let base = Env::empty().bind(x, Value::Int(1));
        let ext = base.bind(y, Value::Int(2));
        assert_eq!(base.lookup(y), None);
        assert_eq!(ext.lookup(x), Some(&Value::Int(1)));
        assert_eq!(ext.lookup(y), Some(&Value::Int(2)));
    }

    #[test]
    fn bind_all_binds_in_order() {
        let x = Symbol::intern("x");
        let e = Env::empty().bind_all([(x, Value::Int(1)), (x, Value::Int(9))]);
        assert_eq!(e.lookup(x), Some(&Value::Int(9)));
    }
}
