//! Structured diagnostics: rustc-style code + severity + message + location.
//!
//! Every static finding about a program, an annotation, or a request is a
//! [`Diagnostic`]: a stable machine-readable code (`E0004`), a
//! [`Severity`], a human-readable message, and a location. Locations come
//! in two shapes because the AST carries no source spans: *lexical*
//! diagnostics (produced while text is still in hand) carry a 1-based
//! line/column, while *semantic* diagnostics (produced over the AST or an
//! annotated program) carry the enclosing function and a dotted
//! expression path such as `body.else.arg1` — stable across re-parsing
//! and pretty-printing.
//!
//! The code space is partitioned:
//!
//! | range   | produced by | meaning |
//! |---------|-------------|---------|
//! | `E0001` | parser      | lexical/syntactic error (incl. unknown primitive, primitive arity) |
//! | `E0002` | analyzer    | duplicate function definition |
//! | `E0003` | analyzer    | duplicate parameter |
//! | `E0004` | analyzer    | unbound variable |
//! | `E0005` | analyzer    | reference to / call of an unknown function |
//! | `E0006` | analyzer    | call-site arity mismatch |
//! | `E0007` | analyzer    | inconsistent input product (Definition 6) |
//! | `E0008` | analyzer    | input specification rejected (count, syntax, facets) |
//! | `W0001` | analyzer    | local binding shadows a name in scope |
//! | `W0002` | analyzer    | unfold-safety: recursion the specializer may unfold without bound |
//! | `W0003` | analyzer    | unused parameter |
//! | `W0004` | analyzer    | dead `let` binding (the optimizer would drop it) |
//! | `W0005` | analyzer    | dead code: definition unreachable from the entry point |
//! | `E0101`–`E0104` | certificate checker | incongruent binding-time annotation (see `ppe-offline`) |
//!
//! Codes are stable: tests, CI, and scripted consumers match on them, so a
//! code is never reused for a different condition.

use std::fmt;

use crate::symbol::Symbol;

/// How bad a [`Diagnostic`] is.
///
/// Errors mean the program (or annotation) is ill-formed and the engines
/// may misbehave on it; warnings flag risks — the program is meaningful
/// but specialization may be wasteful or unbounded (the runtime Governor
/// is the backstop).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Ill-formed: the construct violates a rule the engines rely on.
    Error,
    /// Legal but risky or wasteful.
    Warning,
}

impl Severity {
    /// The lowercase rendering used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured finding.
///
/// # Examples
///
/// ```
/// use ppe_lang::diag::{Diagnostic, Severity};
///
/// let d = Diagnostic::error("E0004", "unbound variable `y`")
///     .in_function(ppe_lang::Symbol::intern("f"))
///     .at_path("body.else.arg1");
/// assert_eq!(d.severity, Severity::Error);
/// assert_eq!(d.to_string(), "error[E0004] f:body.else.arg1: unbound variable `y`");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`E0004`, `W0002`, …).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// The enclosing function, when the finding is inside one.
    pub function: Option<Symbol>,
    /// Dotted expression path within the function body (`body.else.arg1`);
    /// empty when the finding is about the definition as a whole.
    pub path: String,
    /// 1-based source line for lexical diagnostics; 0 when unknown.
    pub line: u32,
    /// 1-based source column for lexical diagnostics; 0 when unknown.
    pub col: u32,
}

impl Diagnostic {
    /// A new error diagnostic with no location.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, message)
    }

    /// A new warning diagnostic with no location.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Warning, message)
    }

    fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            function: None,
            path: String::new(),
            line: 0,
            col: 0,
        }
    }

    /// Attaches the enclosing function.
    #[must_use]
    pub fn in_function(mut self, f: Symbol) -> Diagnostic {
        self.function = Some(f);
        self
    }

    /// Attaches a dotted expression path (e.g. `body.else.arg1`).
    #[must_use]
    pub fn at_path(mut self, path: impl Into<String>) -> Diagnostic {
        self.path = path.into();
        self
    }

    /// Attaches a 1-based line/column (lexical diagnostics).
    #[must_use]
    pub fn at_line_col(mut self, line: u32, col: u32) -> Diagnostic {
        self.line = line;
        self.col = col;
        self
    }

    /// True iff this diagnostic has [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// The location rendered for humans: `f:body.else`, `f`, `3:7`, or
    /// `<program>` when nothing is known.
    pub fn location(&self) -> String {
        match (&self.function, self.path.is_empty(), self.line) {
            (Some(f), false, _) => format!("{f}:{}", self.path),
            (Some(f), true, _) => f.to_string(),
            (None, _, l) if l > 0 => format!("{l}:{}", self.col),
            _ => "<program>".to_string(),
        }
    }
}

impl fmt::Display for Diagnostic {
    /// `severity[code] location: message`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.code,
            self.location(),
            self.message
        )
    }
}

/// Count of error-severity diagnostics in a slice.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.is_error()).count()
}

/// Count of warning-severity diagnostics in a slice.
pub fn warning_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let d = Diagnostic::error("E0001", "expected `)`").at_line_col(3, 7);
        assert_eq!(d.to_string(), "error[E0001] 3:7: expected `)`");
        let d =
            Diagnostic::warning("W0002", "unbounded unfolding").in_function(Symbol::intern("spin"));
        assert_eq!(d.to_string(), "warning[W0002] spin: unbounded unfolding");
        let d = Diagnostic::error("E0004", "unbound variable `q`");
        assert_eq!(d.location(), "<program>");
    }

    #[test]
    fn counts() {
        let ds = vec![
            Diagnostic::error("E0004", "a"),
            Diagnostic::warning("W0001", "b"),
            Diagnostic::error("E0006", "c"),
        ];
        assert_eq!(error_count(&ds), 2);
        assert_eq!(warning_count(&ds), 1);
    }
}
