//! Stable, content-addressed cache keys.
//!
//! A residual program is fully determined by (the entry function's
//! *reachable closure* of definitions, per-input products of facet
//! values, facet set, engine, optimizer flag, and the `PeConfig` policy
//! knobs) — the cache-key soundness argument is spelled out in
//! `DESIGN.md` § "Service layer" and § "Dependency fingerprints". Since
//! the v2 schema the program component is the entry's **closure
//! fingerprint** (`ppe_analyze::depgraph`) rather than the whole-program
//! `Program::fingerprint`: definitions the entry cannot reach can no
//! longer perturb the key, so editing them preserves cache hits. The key
//! hashes nothing process-local: symbol *spellings* rather than interner
//! ids, facet *names* rather than trait-object addresses, and the
//! canonical `Display` rendering of each product component. Two
//! processes (or two threads racing through different interner states)
//! therefore agree on every key.

use std::fmt;

use ppe_core::ProductVal;
use ppe_online::{ExhaustionPolicy, PeConfig};

use crate::request::Engine;

/// A 128-bit FNV-1a content hash identifying one specialization request
/// up to residual-equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// The shard index for this key among `shards` (a power of two).
    pub fn shard(self, shards: usize) -> usize {
        // The low bits select within a shard's HashMap; use high bits for
        // the shard so the two choices stay independent.
        ((self.0 >> 64) as usize) & (shards - 1)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a over 128 bits. 64 bits would invite birthday
/// trouble at production cache sizes; 128 keeps accidental collision
/// probability negligible without pulling in a crypto dependency.
#[derive(Clone, Debug)]
pub struct KeyHasher(u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl KeyHasher {
    /// A fresh hasher, domain-separated by `tag`.
    pub fn new(tag: &str) -> KeyHasher {
        let mut h = KeyHasher(FNV128_OFFSET);
        h.write_str(tag);
        h
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds an integer (little-endian).
    pub fn write_u64(&mut self, n: u64) {
        self.write_bytes(&n.to_le_bytes());
    }

    /// Feeds a length-prefixed string, so adjacent fields can't alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated key.
    pub fn finish(&self) -> CacheKey {
        CacheKey(self.0)
    }
}

fn write_config(h: &mut KeyHasher, config: &PeConfig, optimize: bool) {
    h.write_u64(u64::from(config.max_unfold_depth));
    h.write_u64(config.max_specializations as u64);
    h.write_u64(config.fuel);
    h.write_u64(u64::from(config.propagate_constraints));
    h.write_u64(u64::from(config.check_consistency));
    h.write_u64(config.max_residual_size as u64);
    match config.deadline {
        // Deadline-degraded residuals are wall-clock dependent; the key
        // still includes the budget so differently-budgeted requests never
        // share an entry (see DESIGN.md on why caching them is sound).
        Some(d) => h.write_u64(1 + d.as_millis() as u64),
        None => h.write_u64(0),
    }
    h.write_u64(u64::from(config.max_recursion_depth));
    h.write_u64(match config.on_exhaustion {
        ExhaustionPolicy::Fail => 0,
        ExhaustionPolicy::Degrade => 1,
    });
    h.write_u64(u64::from(optimize));
}

/// Builds the residual-cache key for one fully resolved request.
///
/// `closure_fingerprint` is the entry symbol's transitive-closure
/// fingerprint from `ppe_analyze::depgraph::DepGraph` — spelling-stable
/// and insensitive to definitions the entry cannot reach (that
/// insensitivity is what makes re-specialization incremental).
///
/// `products` must already be lowered over the facet set named by
/// `facet_names` (in that order) — the products' positional rendering only
/// means something together with the facet list, so both are hashed.
pub fn residual_key(
    closure_fingerprint: u64,
    entry: &str,
    engine: Engine,
    facet_names: &[String],
    products: &[ProductVal],
    optimize: bool,
    config: &PeConfig,
) -> CacheKey {
    let mut h = KeyHasher::new("ppe-residual-v2");
    h.write_u64(closure_fingerprint);
    h.write_str(entry);
    h.write_u64(engine as u64);
    h.write_u64(facet_names.len() as u64);
    for name in facet_names {
        h.write_str(name);
    }
    h.write_u64(products.len() as u64);
    for p in products {
        h.write_str(&p.to_string());
    }
    write_config(&mut h, config, optimize);
    h.finish()
}

/// Builds the analysis-cache key (offline engine): like
/// [`residual_key`] but without the optimizer flag — the optimizer runs
/// after specialization and cannot change what the analysis computes.
pub fn analysis_key(
    closure_fingerprint: u64,
    entry: &str,
    facet_names: &[String],
    products: &[ProductVal],
    config: &PeConfig,
) -> CacheKey {
    let mut h = KeyHasher::new("ppe-analysis-v2");
    h.write_u64(closure_fingerprint);
    h.write_str(entry);
    h.write_u64(facet_names.len() as u64);
    for name in facet_names {
        h.write_str(name);
    }
    h.write_u64(products.len() as u64);
    for p in products {
        h.write_str(&p.to_string());
    }
    write_config(&mut h, config, false);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_facets, parse_input};

    fn products(specs: &[&str], facets: &[&str]) -> (Vec<String>, Vec<ProductVal>) {
        let names: Vec<String> = facets.iter().map(|s| s.to_string()).collect();
        let set = build_facets(&names).unwrap();
        let ps = specs
            .iter()
            .map(|s| parse_input(s).unwrap().to_product(&set).unwrap())
            .collect();
        (names, ps)
    }

    #[test]
    fn identical_requests_agree() {
        let (names, ps) = products(&["_:size=3", "_:size=3"], &["size"]);
        let config = PeConfig::default();
        let a = residual_key(7, "iprod", Engine::Online, &names, &ps, false, &config);
        let b = residual_key(7, "iprod", Engine::Online, &names, &ps, false, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn refinement_order_is_canonicalized_by_products() {
        let (names, a) = products(&["_:size=3:sign=pos"], &["sign", "size"]);
        let (_, b) = products(&["_:sign=pos:size=3"], &["sign", "size"]);
        let config = PeConfig::default();
        assert_eq!(
            residual_key(1, "f", Engine::Online, &names, &a, false, &config),
            residual_key(1, "f", Engine::Online, &names, &b, false, &config),
            "the product lowers refinements into facet positions"
        );
    }

    #[test]
    fn every_component_separates_keys() {
        let (names, ps) = products(&["_:size=3"], &["size"]);
        let config = PeConfig::default();
        let base = residual_key(7, "f", Engine::Online, &names, &ps, false, &config);
        let (_, other) = products(&["_:size=4"], &["size"]);
        assert_ne!(
            base,
            residual_key(7, "f", Engine::Online, &names, &other, false, &config)
        );
        assert_ne!(
            base,
            residual_key(8, "f", Engine::Online, &names, &ps, false, &config)
        );
        assert_ne!(
            base,
            residual_key(7, "g", Engine::Online, &names, &ps, false, &config)
        );
        assert_ne!(
            base,
            residual_key(7, "f", Engine::Simple, &names, &ps, false, &config)
        );
        assert_ne!(
            base,
            residual_key(7, "f", Engine::Online, &names, &ps, true, &config)
        );
        let tight = PeConfig {
            fuel: 1,
            ..PeConfig::default()
        };
        assert_ne!(
            base,
            residual_key(7, "f", Engine::Online, &names, &ps, false, &tight)
        );
    }

    #[test]
    fn shards_use_high_bits() {
        let (names, ps) = products(&["_"], &["sign"]);
        let k = residual_key(
            1,
            "f",
            Engine::Online,
            &names,
            &ps,
            false,
            &PeConfig::default(),
        );
        assert!(k.shard(16) < 16);
        assert_eq!(k.shard(1), 0);
    }
}
