//! The TCP front-end: a long-running network server over the serve-loop
//! protocol.
//!
//! Dependency-free by design (the workspace builds with no registry
//! access): `std::net` listener, one OS thread per connection, and a
//! hand-rolled counting semaphore bounding accepted connections. Each
//! connection runs the same [`handle_session`] line loop as stdio
//! `ppe serve` — JSON-lines in, JSON-lines out, 1 MiB line cap, bad-UTF-8
//! survival — with three network-only layers on top:
//!
//! - **Admission control** ([`RequestGovernor`]): every request's deadline
//!   is clamped to `--request-deadline-ms`, and once `max_inflight`
//!   requests are executing, further arrivals are *shed* — forced onto
//!   `Degrade` with a tight deadline and answered with `"shed": true`
//!   rather than refused.
//! - **Bounded accept**: at most `max_connections` sessions exist at
//!   once; excess connections queue in the OS accept backlog instead of
//!   spawning unbounded threads.
//! - **Graceful drain**: `{"cmd":"shutdown"}` on any connection (or
//!   [`NetServer::drain`]) stops accepting, lets every in-flight request
//!   finish and flush its response, refuses late connections with a
//!   structured error line, then returns from [`NetServer::run`] so the
//!   caller can flush final metrics.
//!
//! Idle sessions notice the drain flag through a short read timeout: the
//! socket read wakes every [`DRAIN_POLL`], the session polls the flag via
//! the interrupt hook, and goes back to reading if the server is still
//! up. The accept loop itself is woken by a loopback self-connection, so
//! a drain triggered from another thread never waits on a client.

use std::cell::RefCell;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crate::driver::WORKER_STACK_BYTES;
use crate::serve::{handle_session, RequestGovernor, ServeSummary, SessionOptions};
use crate::service::SpecializeService;

/// How often an idle session wakes from a blocked read to poll the drain
/// flag. Short enough that drain latency is invisible next to in-flight
/// work; long enough that idle sessions cost nothing measurable.
pub const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Knobs for one [`NetServer::run`] call.
#[derive(Clone, Copy, Debug)]
pub struct NetOptions {
    /// Most sessions alive at once; further connections wait in the OS
    /// accept backlog.
    pub max_connections: usize,
    /// Shed requests once this many are executing (typically the worker
    /// parallelism the host can sustain, i.e. `--jobs`).
    pub max_inflight: u64,
    /// Deadline cap applied to every request (`--request-deadline-ms`);
    /// `None` leaves client deadlines untouched.
    pub request_deadline: Option<Duration>,
    /// Deadline forced onto shed requests.
    pub shed_deadline: Duration,
}

impl Default for NetOptions {
    fn default() -> NetOptions {
        NetOptions {
            max_connections: 64,
            max_inflight: 4,
            request_deadline: None,
            shed_deadline: Duration::from_millis(50),
        }
    }
}

/// What one [`NetServer::run`] lifetime processed, summed over sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections refused because the server was draining.
    pub refused: u64,
    /// Non-empty request lines consumed, over all sessions.
    pub lines: u64,
    /// Specialization requests dispatched (excludes control messages).
    pub requests: u64,
    /// Responses with `ok: false`.
    pub errors: u64,
}

/// A bound TCP listener plus the server-wide drain flag.
///
/// Binding is separate from running so callers (and tests) can learn the
/// ephemeral port before any client connects, and can trigger
/// [`drain`](NetServer::drain) from another thread.
#[derive(Debug)]
pub struct NetServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    draining: AtomicBool,
}

/// A hand-rolled counting semaphore (std has none): bounds live sessions.
#[derive(Debug)]
struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.freed.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore poisoned") += 1;
        self.freed.notify_one();
    }
}

/// Releases a semaphore permit and decrements the active-connection gauge
/// even if the session I/O errors out.
struct SessionGuard<'a> {
    semaphore: &'a Semaphore,
    active: &'a AtomicU64,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Relaxed);
        self.semaphore.release();
    }
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Address resolution or bind failures.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(NetServer {
            listener,
            local_addr,
            draining: AtomicBool::new(false),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Triggers a graceful drain from any thread: stop accepting, finish
    /// in-flight work, return from [`run`](NetServer::run). Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Relaxed);
        // Wake the accept loop if it is blocked with no client in sight.
        // The self-connection is then refused like any other late arrival;
        // failure is fine — it means a real connection is already waking
        // the loop.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Serves connections until drained.
    ///
    /// Each accepted connection gets its own big-stack session thread
    /// running [`handle_session`] with this server's drain flag and a
    /// [`RequestGovernor`] built from `options`. The call returns only
    /// after every session thread has finished — in-flight requests
    /// always flush their responses before the drain completes.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection I/O errors end that
    /// session and are absorbed into the summary.
    pub fn run(&self, service: &SpecializeService, options: NetOptions) -> io::Result<NetSummary> {
        let governor = RequestGovernor {
            request_deadline: options.request_deadline,
            max_inflight: options.max_inflight.max(1),
            shed_deadline: options.shed_deadline,
        };
        let semaphore = Semaphore::new(options.max_connections.max(1));
        let metrics = service.metrics();
        let lines = AtomicU64::new(0);
        let requests = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        let mut summary = NetSummary::default();

        thread::scope(|scope| -> io::Result<()> {
            loop {
                semaphore.acquire();
                let (stream, _peer) = match self.listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        semaphore.release();
                        continue;
                    }
                    Err(e) => {
                        semaphore.release();
                        return Err(e);
                    }
                };
                if self.draining.load(Relaxed) {
                    summary.refused += 1;
                    metrics.connections_refused.fetch_add(1, Relaxed);
                    refuse(stream);
                    semaphore.release();
                    break;
                }
                summary.connections += 1;
                metrics.connections.fetch_add(1, Relaxed);
                metrics.connections_active.fetch_add(1, Relaxed);
                let guard = SessionGuard {
                    semaphore: &semaphore,
                    active: &metrics.connections_active,
                };
                let (governor, lines, requests, errors) = (&governor, &lines, &requests, &errors);
                let spawned = thread::Builder::new()
                    .name("ppe-net-session".to_owned())
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        let _guard = guard;
                        let summary = serve_connection(service, &stream, governor, self);
                        if let Ok(s) = summary {
                            lines.fetch_add(s.lines, Relaxed);
                            requests.fetch_add(s.requests, Relaxed);
                            errors.fetch_add(s.errors, Relaxed);
                        }
                    });
                if spawned.is_err() {
                    // Thread exhaustion: shed the connection outright (its
                    // guard just dropped, releasing the permit).
                    summary.refused += 1;
                    metrics.connections_refused.fetch_add(1, Relaxed);
                }
            }
            // Draining: keep refusing queued and late connections with a
            // structured error line (never a silent hangup) until every
            // session thread has exited, then let the scope join them.
            self.listener.set_nonblocking(true)?;
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        summary.refused += 1;
                        metrics.connections_refused.fetch_add(1, Relaxed);
                        refuse(stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if metrics.connections_active.load(Relaxed) == 0 {
                            break;
                        }
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            Ok(())
        })?;

        summary.lines = lines.load(Relaxed);
        summary.requests = requests.load(Relaxed);
        summary.errors = errors.load(Relaxed);
        Ok(summary)
    }
}

/// Runs one connection's session with the drain-aware hooks installed.
fn serve_connection(
    service: &SpecializeService,
    stream: &TcpStream,
    governor: &RequestGovernor,
    server: &NetServer,
) -> io::Result<ServeSummary> {
    stream.set_read_timeout(Some(DRAIN_POLL))?;
    // Small request/response lines with Nagle enabled stall behind the
    // peer's delayed ACKs (~40ms per window); responses must leave now.
    stream.set_nodelay(true)?;
    let on_shutdown = || server.drain();
    let interrupt = || server.draining.load(Relaxed);
    let session = SessionOptions {
        governor: Some(governor),
        draining: Some(&server.draining),
        on_shutdown: Some(&on_shutdown),
        interrupt: Some(&interrupt),
    };
    // Responses are buffered and hit the socket only when the session is
    // about to block for more input (`FlushOnRead`), so a client
    // pipelining a window of requests costs one write syscall per burst
    // instead of one per response — the difference between ~25k and
    // ~100k warm rps on a single core.
    let writer = Rc::new(RefCell::new(BufWriter::with_capacity(
        128 * 1024,
        stream.try_clone()?,
    )));
    let input = BufReader::new(FlushOnRead {
        inner: stream,
        writer: Rc::clone(&writer),
    });
    let result = handle_session(service, input, SessionWriter(Rc::clone(&writer)), &session);
    // The last responses (and the shutdown ack) may still be buffered:
    // the session exits without a further read. Flush before hanging up.
    let flushed = writer.borrow_mut().flush();
    let summary = result?;
    flushed?;
    Ok(summary)
}

/// The read half of a session: flushes the shared response buffer before
/// every refill, i.e. exactly when the session has exhausted buffered
/// input and is about to block. A client waiting on a response is by
/// definition not sending, so its session is about to block — no response
/// is ever withheld from a waiting client. Flush failures surface as read
/// errors, which end the session the same way a write error would.
struct FlushOnRead<'a> {
    inner: &'a TcpStream,
    writer: Rc<RefCell<BufWriter<TcpStream>>>,
}

impl Read for FlushOnRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.writer.borrow_mut().flush()?;
        self.inner.read(buf)
    }
}

/// The write half of a session: appends to the shared buffer and treats
/// per-line `flush()` as a no-op — real flushes happen in
/// [`FlushOnRead::read`] and at session end.
struct SessionWriter(Rc<RefCell<BufWriter<TcpStream>>>);

impl Write for SessionWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Answers a refused (post-drain) connection with one structured error
/// line so clients fail loudly, not on a silent hangup.
fn refuse(mut stream: TcpStream) {
    let _ =
        stream.write_all(b"{\"error\":\"server is draining; connection refused\",\"ok\":false}\n");
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::service::{ServiceConfig, SpecializeService};
    use std::io::{BufRead, BufReader};
    use std::sync::Arc;

    const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";

    fn request_line(id: u64, n: u64) -> String {
        format!(r#"{{"id": {id}, "program": "{POWER}", "inputs": "_ {n}"}}"#)
    }

    struct Client {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            Client { stream, reader }
        }

        fn send(&mut self, line: &str) {
            self.stream
                .write_all(format!("{line}\n").as_bytes())
                .expect("send");
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("recv");
            line.trim_end().to_owned()
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.send(line);
            self.recv()
        }
    }

    fn spawn_server(
        options: NetOptions,
    ) -> (
        Arc<NetServer>,
        SocketAddr,
        thread::JoinHandle<io::Result<NetSummary>>,
    ) {
        let server = Arc::new(NetServer::bind("127.0.0.1:0").expect("bind"));
        let addr = server.local_addr();
        let handle = {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let service = SpecializeService::new(ServiceConfig::default());
                server.run(&service, options)
            })
        };
        (server, addr, handle)
    }

    #[test]
    fn specialize_health_ready_metrics_over_tcp() {
        let (_server, addr, handle) = spawn_server(NetOptions::default());
        let mut client = Client::connect(addr);

        let response = client.roundtrip(&request_line(1, 3));
        assert!(response.contains("\"ok\":true"), "{response}");
        assert!(response.contains("\"id\":1"), "{response}");
        assert!(response.contains("\"residual\""), "{response}");

        let health = client.roundtrip(r#"{"cmd": "health"}"#);
        assert!(health.contains("\"health\":\"ok\""), "{health}");
        let ready = client.roundtrip(r#"{"cmd": "ready"}"#);
        assert!(ready.contains("\"ready\":true"), "{ready}");

        let metrics = client.roundtrip(r#"{"cmd": "metrics"}"#);
        let parsed = Json::parse(&metrics).expect("metrics json");
        let requests = parsed
            .get("metrics")
            .and_then(|m| m.get("requests"))
            .and_then(Json::as_u64);
        assert_eq!(requests, Some(1), "{metrics}");

        let prom = client.roundtrip(r#"{"cmd": "metrics", "format": "prometheus"}"#);
        let parsed = Json::parse(&prom).expect("prometheus envelope");
        let text = parsed
            .get("prometheus")
            .and_then(Json::as_str)
            .expect("prometheus text");
        assert!(text.contains("# TYPE ppe_requests_total counter"), "{text}");
        assert!(text.contains("ppe_request_duration_us_count 1"), "{text}");

        let shutdown = client.roundtrip(r#"{"cmd": "shutdown"}"#);
        assert!(shutdown.contains("\"shutdown\":true"), "{shutdown}");
        let summary = handle.join().expect("server thread").expect("run");
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn sessions_are_concurrent_not_serialized() {
        // Two clients interleave on one server: each must get its own
        // responses without waiting for the other session to close.
        let (_server, addr, handle) = spawn_server(NetOptions::default());
        let mut a = Client::connect(addr);
        let mut b = Client::connect(addr);
        let ra = a.roundtrip(&request_line(10, 2));
        let rb = b.roundtrip(&request_line(20, 4));
        assert!(ra.contains("\"id\":10"), "{ra}");
        assert!(rb.contains("\"id\":20"), "{rb}");
        a.send(r#"{"cmd": "shutdown"}"#);
        assert!(a.recv().contains("\"shutdown\":true"));
        let summary = handle.join().expect("server thread").expect("run");
        assert_eq!(summary.connections, 2);
        assert_eq!(summary.requests, 2);
    }

    #[test]
    fn drain_finishes_inflight_then_refuses_late_connections() {
        let (server, addr, handle) = spawn_server(NetOptions::default());
        let mut worker = Client::connect(addr);
        // A deadline-bound degrade request on an infinitely-unfolding
        // program: deterministic ~150 ms of in-flight work.
        let slow = r#"{"id": 99, "program": "(define (spin x n) (spin x (+ n 1)))", "inputs": "_ 0", "deadline_ms": 150, "fuel": 100000000, "max_unfold_depth": 100000000, "max_specializations": 100000000, "on_exhaustion": "degrade"}"#;
        worker.send(slow);
        // Give the request time to be read off the socket, then drain
        // while it is executing.
        thread::sleep(Duration::from_millis(40));
        server.drain();
        // A connection arriving during the drain window is refused with a
        // structured error line (the worker is still in flight, so the
        // refuse loop is live).
        let mut late = Client::connect(addr);
        let refusal = late.recv();
        assert!(refusal.contains("draining"), "{refusal}");
        assert!(refusal.contains("\"ok\":false"), "{refusal}");
        // The in-flight response must still arrive, intact.
        let response = worker.recv();
        assert!(response.contains("\"id\":99"), "{response}");
        assert!(response.contains("\"ok\":true"), "{response}");
        let summary = handle.join().expect("server thread").expect("run");
        assert_eq!(summary.requests, 1);
        assert!(summary.refused >= 1, "{summary:?}");
    }

    #[test]
    fn shutdown_command_on_admin_connection_drains_other_sessions() {
        let (_server, addr, handle) = spawn_server(NetOptions::default());
        let mut worker = Client::connect(addr);
        let first = worker.roundtrip(&request_line(1, 2));
        assert!(first.contains("\"ok\":true"), "{first}");

        let mut admin = Client::connect(addr);
        let ack = admin.roundtrip(r#"{"cmd": "shutdown"}"#);
        assert!(ack.contains("\"shutdown\":true"), "{ack}");

        // The idle worker session notices the drain within a poll tick
        // and run() returns once both sessions close.
        let summary = handle.join().expect("server thread").expect("run");
        assert_eq!(summary.connections, 2);
        // The worker's next read sees a clean end-of-stream.
        let mut line = String::new();
        let n = worker.reader.read_line(&mut line).expect("eof read");
        assert_eq!(n, 0, "drained session should close cleanly: {line}");
    }

    #[test]
    fn sheds_when_inflight_exceeds_limit() {
        // max_inflight=1 and two concurrent slow requests: at least one
        // must carry the shed marker, and the shed counter must move.
        let (_server, addr, handle) = spawn_server(NetOptions {
            max_inflight: 1,
            ..NetOptions::default()
        });
        // With the default native recursion-depth cap an infinitely-
        // unfolding function degrades within ~tens of ms — too brief to
        // overlap reliably. Raising `max_recursion_depth` to its wire
        // ceiling buys hundreds of ms of unfolding, so the 150ms deadline
        // is what ends the run and the in-flight window is deterministic.
        let slow = |id: u64| {
            format!(
                r#"{{"id": {id}, "program": "(define (spin{id} x n) (spin{id} x (+ n 1)))", "inputs": "_ 0", "deadline_ms": 150, "fuel": 100000000, "max_unfold_depth": 100000000, "max_recursion_depth": 65536, "max_specializations": 100000000, "on_exhaustion": "degrade"}}"#
            )
        };
        let mut a = Client::connect(addr);
        let mut b = Client::connect(addr);
        a.send(&slow(1));
        thread::sleep(Duration::from_millis(60));
        b.send(&slow(2));
        let ra = a.recv();
        let rb = b.recv();
        assert!(ra.contains("\"ok\":true"), "{ra}");
        assert!(rb.contains("\"ok\":true"), "{rb}");
        assert!(
            !ra.contains("\"shed\":true") && rb.contains("\"shed\":true"),
            "only the second request should shed:\n{ra}\n{rb}"
        );
        let mut admin = Client::connect(addr);
        let metrics = admin.roundtrip(r#"{"cmd": "metrics"}"#);
        let parsed = Json::parse(&metrics).expect("metrics json");
        let shed = parsed
            .get("metrics")
            .and_then(|m| m.get("shed"))
            .and_then(Json::as_u64);
        assert_eq!(shed, Some(1), "{metrics}");
        admin.send(r#"{"cmd": "shutdown"}"#);
        let _ = admin.recv();
        handle.join().expect("server thread").expect("run");
    }

    #[test]
    fn line_cap_applies_over_tcp() {
        let (_server, addr, handle) = spawn_server(NetOptions::default());
        let mut client = Client::connect(addr);
        let blast = "x".repeat(crate::serve::MAX_LINE_BYTES + 17);
        let oversized = client.roundtrip(&blast);
        assert!(oversized.contains("exceeds"), "{oversized}");
        let ok = client.roundtrip(&request_line(5, 2));
        assert!(ok.contains("\"ok\":true"), "{ok}");
        client.send(r#"{"cmd": "shutdown"}"#);
        let _ = client.recv();
        handle.join().expect("server thread").expect("run");
    }
}
