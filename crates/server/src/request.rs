//! The service API: one request/response pair shared by the batch driver,
//! the serve loop, and library callers.
//!
//! A [`SpecializeRequest`] is deliberately *plain data* — source text,
//! input spec strings, facet names, and a [`PeConfig`] — because the
//! parsed forms (`FacetSet`, `PeInput`, `Analysis`) are `Rc`-backed and
//! cannot cross threads. Workers re-derive the parsed forms locally
//! (parsing is microseconds; specialization is the expensive part), which
//! also guarantees that every worker sees exactly the request the client
//! sent, not a shared mutable view of it.

use std::sync::Arc;
use std::time::Duration;

use ppe_lang::diag::Diagnostic;
use ppe_online::{DegradationEvent, ExhaustionPolicy, PeConfig, PeStats};

use crate::json::Json;
use crate::key::CacheKey;
use crate::spec::ALL_FACETS;

/// Which specialization engine answers the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The online parameterized specializer (Figure 3).
    Online = 0,
    /// The conventional simple specializer (Figure 2); facet refinements
    /// on inputs are ignored (it has no facets).
    Simple = 1,
    /// Facet analysis + analysis-driven specialization (Section 5). The
    /// analysis is cached per worker and reused across requests with the
    /// same (program, entry, abstract inputs, policy).
    Offline = 2,
}

impl Engine {
    /// The wire name (`engine` field of the serve protocol).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Online => "online",
            Engine::Simple => "simple",
            Engine::Offline => "offline",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Names the unknown engine.
    pub fn parse(s: &str) -> Result<Engine, String> {
        match s {
            "online" => Ok(Engine::Online),
            "simple" => Ok(Engine::Simple),
            "offline" => Ok(Engine::Offline),
            other => Err(format!("unknown engine `{other}` (online|simple|offline)")),
        }
    }
}

/// Which engine runs a residual on the `"execute"` path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecEngine {
    /// The bytecode compiler + register VM (`ppe-vm`), with a
    /// process-wide chunk cache keyed by term fingerprints.
    #[default]
    Vm,
    /// The AST evaluator — the differential oracle. Slower; useful for
    /// cross-checking the VM from the wire.
    Ast,
}

impl ExecEngine {
    /// The wire name (`exec_engine` field of the serve protocol).
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Vm => "vm",
            ExecEngine::Ast => "ast",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Names the unknown engine.
    pub fn parse(s: &str) -> Result<ExecEngine, String> {
        match s {
            "vm" => Ok(ExecEngine::Vm),
            "ast" => Ok(ExecEngine::Ast),
            other => Err(format!("unknown exec engine `{other}` (vm|ast)")),
        }
    }
}

/// Which backend performs the specializer's *own* static evaluation —
/// the fully-static subtrees the engines must reduce while producing the
/// residual. Independent of [`ExecEngine`], which runs the *finished*
/// residual.
///
/// Residuals are byte-identical under either choice (the VM shortcut's
/// lowering contract, see `ppe_online::spec_eval`), so this is
/// deliberately **not** part of the cache key: a residual computed under
/// one backend answers requests made under the other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SpecEngine {
    /// Lower static subtrees to `ppe-vm` bytecode once and replay them
    /// through the chunk cache (the fast path).
    #[default]
    Vm,
    /// Pure AST evaluation inside the engines — the differential oracle.
    Ast,
}

impl SpecEngine {
    /// The wire name (`spec_engine` field of the serve protocol).
    pub fn name(self) -> &'static str {
        match self {
            SpecEngine::Vm => "vm",
            SpecEngine::Ast => "ast",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Names the unknown engine.
    pub fn parse(s: &str) -> Result<SpecEngine, String> {
        match s {
            "vm" => Ok(SpecEngine::Vm),
            "ast" => Ok(SpecEngine::Ast),
            other => Err(format!("unknown spec engine `{other}` (vm|ast)")),
        }
    }
}

/// A request to *run* the residual after specializing: concrete values
/// for every residual parameter, and the engine to run them on.
///
/// Execution is deliberately **not** part of the cache key: the residual
/// is fetched (or computed) once per distinct specialization, then each
/// request executes it on its own inputs. Repeat executions of the same
/// residual hit the VM's process-wide chunk cache and skip compilation.
#[derive(Clone, Debug)]
pub struct ExecuteRequest {
    /// Concrete value strings (see [`crate::spec::parse_value`]), one per
    /// residual entry parameter.
    pub inputs: Vec<String>,
    /// The engine to run the residual on.
    pub engine: ExecEngine,
}

/// The highest `max_recursion_depth` a wire request may set.
///
/// The other budgets only bound how much *work* a request buys; this one
/// bounds native stack frames, where overshooting is an uncatchable
/// abort. Worker and session threads run on
/// [`crate::driver::WORKER_STACK_BYTES`] (256 MiB) stacks; this ceiling
/// (8× the engine default) stays an order of magnitude below what those
/// absorb.
pub const MAX_WIRE_RECURSION_DEPTH: u64 = 65_536;

/// One specialization request.
#[derive(Clone, Debug)]
pub struct SpecializeRequest {
    /// Source text of the subject program. `Arc` so a batch over one
    /// program shares a single copy across worker threads.
    pub program_src: Arc<String>,
    /// Entry function; `None` means the program's main (first) function.
    pub function: Option<String>,
    /// Input specs, one per entry-function parameter (see [`crate::spec`]).
    pub inputs: Vec<String>,
    /// Facet names, in order (see [`crate::spec::ALL_FACETS`]).
    pub facets: Vec<String>,
    /// The engine to run.
    pub engine: Engine,
    /// Run the residual cleanup passes before rendering.
    pub optimize: bool,
    /// Budgets and policy for this request.
    pub config: PeConfig,
    /// Backend for the engines' own static evaluation (see [`SpecEngine`];
    /// not part of the cache key).
    pub spec_engine: SpecEngine,
    /// When set, run the residual on these concrete inputs and attach the
    /// result to the response (`exec` field).
    pub execute: Option<ExecuteRequest>,
}

impl SpecializeRequest {
    /// A request against `program_src` with every default: online engine,
    /// all facets, default policy, no optimizer.
    pub fn new(program_src: impl Into<String>, inputs: Vec<String>) -> SpecializeRequest {
        SpecializeRequest {
            program_src: Arc::new(program_src.into()),
            function: None,
            inputs,
            facets: ALL_FACETS.iter().map(|s| s.to_string()).collect(),
            engine: Engine::Online,
            optimize: false,
            config: PeConfig::default(),
            spec_engine: SpecEngine::default(),
            execute: None,
        }
    }

    /// Parses a serve-protocol JSON object into a request.
    ///
    /// Recognized fields: `program` (required), `inputs` (array of spec
    /// strings, or one whitespace-separated string), `function`, `engine`,
    /// `facets`, `optimize`, `fuel`, `deadline_ms`, `max_unfold_depth`,
    /// `max_specializations`, `max_residual_size`, `max_recursion_depth`
    /// (clamped to [`MAX_WIRE_RECURSION_DEPTH`]), `on_exhaustion`,
    /// `constraints`, `execute` (array of concrete value strings, or one
    /// whitespace-separated string — run the residual on these inputs),
    /// `exec_engine` (`vm` or `ast`, default `vm`), `spec_engine` (`vm`
    /// or `ast`, default `vm` — the backend for the specializer's own
    /// static evaluation). Unknown fields are ignored (forward
    /// compatibility).
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<SpecializeRequest, String> {
        let program = v
            .get("program")
            .and_then(Json::as_str)
            .ok_or("request needs a `program` string")?;
        let mut req = SpecializeRequest::new(program, Vec::new());
        req.inputs = match v.get("inputs") {
            None => Vec::new(),
            Some(Json::Str(s)) => s.split_whitespace().map(str::to_owned).collect(),
            Some(Json::Arr(xs)) => xs
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "`inputs` elements must be strings".to_owned())
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err("`inputs` must be an array of strings".to_owned()),
        };
        if let Some(f) = v.get("function") {
            req.function = Some(f.as_str().ok_or("`function` must be a string")?.to_owned());
        }
        if let Some(e) = v.get("engine") {
            req.engine = Engine::parse(e.as_str().ok_or("`engine` must be a string")?)?;
        }
        if let Some(fs) = v.get("facets") {
            let xs = fs.as_array().ok_or("`facets` must be an array")?;
            req.facets = xs
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "`facets` elements must be strings".to_owned())
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(o) = v.get("optimize") {
            req.optimize = o.as_bool().ok_or("`optimize` must be a boolean")?;
        }
        let num = |field: &str| -> Result<Option<u64>, String> {
            match v.get(field) {
                None => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("`{field}` must be a non-negative integer")),
            }
        };
        if let Some(fuel) = num("fuel")? {
            req.config.fuel = fuel;
        }
        if let Some(ms) = num("deadline_ms")? {
            req.config.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(d) = num("max_unfold_depth")? {
            req.config.max_unfold_depth =
                u32::try_from(d).map_err(|_| "`max_unfold_depth` too large".to_owned())?;
        }
        if let Some(n) = num("max_specializations")? {
            req.config.max_specializations = n as usize;
        }
        if let Some(n) = num("max_residual_size")? {
            req.config.max_residual_size = n as usize;
        }
        if let Some(d) = num("max_recursion_depth")? {
            // Unlike the other budgets this one guards *native* stack
            // space, so the wire cannot raise it arbitrarily: cap it to
            // what the big worker stacks (`WORKER_STACK_BYTES`) absorb
            // comfortably. Clamping (not erroring) keeps larger values
            // forward-compatible.
            req.config.max_recursion_depth =
                u32::try_from(d.min(MAX_WIRE_RECURSION_DEPTH)).expect("clamped to u32 range");
        }
        if let Some(p) = v.get("on_exhaustion") {
            req.config.on_exhaustion = match p.as_str().ok_or("`on_exhaustion` must be a string")? {
                "fail" => ExhaustionPolicy::Fail,
                "degrade" => ExhaustionPolicy::Degrade,
                other => {
                    return Err(format!(
                        "`on_exhaustion` must be fail or degrade, got `{other}`"
                    ))
                }
            };
        }
        if let Some(c) = v.get("constraints") {
            req.config.propagate_constraints =
                c.as_bool().ok_or("`constraints` must be a boolean")?;
        }
        if let Some(e) = v.get("spec_engine") {
            req.spec_engine =
                SpecEngine::parse(e.as_str().ok_or("`spec_engine` must be a string")?)?;
        }
        let exec_inputs = match v.get("execute") {
            None => None,
            Some(Json::Str(s)) => Some(s.split_whitespace().map(str::to_owned).collect()),
            Some(Json::Arr(xs)) => Some(
                xs.iter()
                    .map(|x| {
                        x.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "`execute` elements must be strings".to_owned())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(_) => return Err("`execute` must be an array of strings".to_owned()),
        };
        if let Some(inputs) = exec_inputs {
            let engine = match v.get("exec_engine") {
                None => ExecEngine::default(),
                Some(e) => ExecEngine::parse(e.as_str().ok_or("`exec_engine` must be a string")?)?,
            };
            req.execute = Some(ExecuteRequest { inputs, engine });
        } else if v.get("exec_engine").is_some() {
            return Err("`exec_engine` needs an `execute` inputs field".to_owned());
        }
        Ok(req)
    }
}

/// How the cache answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Answered from a completed in-memory cache entry.
    Hit,
    /// Computed by this request (and cached, budget permitting).
    Miss,
    /// Answered from the disk persistence tier (and promoted into the
    /// in-memory cache).
    Disk,
    /// Blocked on an identical in-flight computation (single-flight).
    Coalesced,
    /// Failed before reaching the cache (parse or validation error).
    Unreached,
}

impl CacheDisposition {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Disk => "disk",
            CacheDisposition::Coalesced => "coalesced",
            CacheDisposition::Unreached => "unreached",
        }
    }
}

/// The successful payload of a response.
#[derive(Clone, Debug)]
pub struct SpecializeOutput {
    /// The pretty-printed residual program.
    pub residual: String,
    /// Engine counters for this specialization (replayed on cache hits).
    pub stats: PeStats,
    /// Per-request degradation events — including events that happened on
    /// a worker thread, and cache-capacity events added by the service.
    pub degradations: Vec<DegradationEvent>,
}

/// The result of running the residual (the request's `execute` field).
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The computed value rendered with `Display`, or the evaluation
    /// error (fuel exhaustion, depth limit, runtime error, bad input).
    pub value: Result<String, String>,
    /// The engine that ran it.
    pub engine: ExecEngine,
    /// Chunks compiled for this execution (0 on a chunk-cache hit, and
    /// always 0 on the AST engine).
    pub chunks_compiled: u64,
    /// Whether the compiled program came from the process-wide chunk
    /// cache (always `false` on the AST engine).
    pub chunk_cache_hit: bool,
    /// Opcodes the VM dispatched (0 on the AST engine).
    pub ops_executed: u64,
    /// Function applications performed (both engines meter these
    /// identically).
    pub fuel_used: u64,
}

impl ExecOutcome {
    /// Renders the outcome as the response's `exec` object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("engine", Json::str(self.engine.name()))];
        match &self.value {
            Ok(v) => {
                fields.push(("ok", Json::Bool(true)));
                fields.push(("value", Json::str(v.clone())));
            }
            Err(msg) => {
                fields.push(("ok", Json::Bool(false)));
                fields.push(("error", Json::str(msg.clone())));
            }
        }
        fields.push(("fuel_used", Json::num(self.fuel_used)));
        if self.engine == ExecEngine::Vm {
            fields.push(("chunks_compiled", Json::num(self.chunks_compiled)));
            fields.push((
                "chunk_cache",
                Json::str(if self.chunk_cache_hit { "hit" } else { "miss" }),
            ));
            fields.push(("ops", Json::num(self.ops_executed)));
        }
        Json::obj(fields)
    }
}

/// One specialization response.
#[derive(Clone, Debug)]
pub struct SpecializeResponse {
    /// The output, or a human-readable error.
    pub outcome: Result<SpecializeOutput, String>,
    /// How the cache answered.
    pub disposition: CacheDisposition,
    /// The request's cache key, once computed.
    pub key: Option<CacheKey>,
    /// Wall time spent answering, microseconds.
    pub wall_micros: u64,
    /// Pre-flight findings about the request's program: on a parse
    /// failure, the analyzer's full structured report (so a client sees
    /// *every* problem, not the first as a string); on success, any
    /// warnings (`W…` codes). Empty for a diagnostic-free program, and
    /// omitted from the wire rendering then — older clients see an
    /// unchanged protocol.
    pub diagnostics: Vec<Diagnostic>,
    /// The result of running the residual, when the request asked for
    /// execution (`execute` inputs) and specialization succeeded. Omitted
    /// from the wire rendering otherwise — older clients see an unchanged
    /// protocol.
    pub exec: Option<ExecOutcome>,
    /// Whether the front-end shed this request — forced it onto
    /// `Degrade` with a tight deadline because the in-flight limit was
    /// hit (see [`crate::serve::RequestGovernor`]). Rendered on the wire
    /// only when `true`, so transports without admission control emit an
    /// unchanged protocol.
    pub shed: bool,
}

impl SpecializeResponse {
    /// An error response that never reached the cache.
    pub fn error(message: impl Into<String>) -> SpecializeResponse {
        SpecializeResponse {
            outcome: Err(message.into()),
            disposition: CacheDisposition::Unreached,
            key: None,
            wall_micros: 0,
            diagnostics: Vec::new(),
            exec: None,
            shed: false,
        }
    }

    /// The degradation events, empty on error.
    pub fn degradations(&self) -> &[DegradationEvent] {
        match &self.outcome {
            Ok(out) => &out.degradations,
            Err(_) => &[],
        }
    }

    /// Renders the response for the serve protocol, echoing `id`.
    pub fn to_json(&self, id: Option<&Json>) -> Json {
        let mut fields = vec![
            ("cache", Json::str(self.disposition.name())),
            ("wall_us", Json::num(self.wall_micros)),
        ];
        if let Some(id) = id {
            fields.push(("id", id.clone()));
        }
        if let Some(key) = self.key {
            fields.push(("key", Json::str(key.to_string())));
        }
        match &self.outcome {
            Ok(out) => {
                fields.push(("ok", Json::Bool(true)));
                fields.push(("residual", Json::str(out.residual.clone())));
                fields.push(("stats", stats_json(&out.stats)));
                fields.push((
                    "degradations",
                    Json::Arr(out.degradations.iter().map(degradation_json).collect()),
                ));
            }
            Err(msg) => {
                fields.push(("ok", Json::Bool(false)));
                fields.push(("error", Json::str(msg.clone())));
            }
        }
        if !self.diagnostics.is_empty() {
            fields.push((
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(diagnostic_json).collect()),
            ));
        }
        if let Some(exec) = &self.exec {
            fields.push(("exec", exec.to_json()));
        }
        if self.shed {
            fields.push(("shed", Json::Bool(true)));
        }
        Json::obj(fields)
    }

    /// Pre-renders the per-key-stable parts of this response's wire line,
    /// or `None` when the response has per-request payload (errors, shed
    /// markers, execution results) that makes caching unsound.
    ///
    /// Specialization output is deterministic per cache key — that is the
    /// invariant the residual cache itself rests on — so everything except
    /// `cache`, `id`, and `wall_us` renders to identical bytes for every
    /// request that maps to the same key. Serving transports exploit that
    /// with a session-local template cache: repeat hits skip JSON tree
    /// construction and residual re-escaping, and a response line becomes
    /// two `memcpy`s plus three small fields (see `RenderedHit::line`,
    /// which is tested byte-identical to [`SpecializeResponse::to_json`]).
    pub fn hit_template(&self) -> Option<RenderedHit> {
        let out = self.outcome.as_ref().ok()?;
        if self.shed || self.exec.is_some() {
            return None;
        }
        let key = self.key?;
        let mut mid = Json::Arr(out.degradations.iter().map(degradation_json).collect()).render();
        if !self.diagnostics.is_empty() {
            mid.push_str(",\"diagnostics\":");
            mid.push_str(
                &Json::Arr(self.diagnostics.iter().map(diagnostic_json).collect()).render(),
            );
        }
        let mut tail = String::with_capacity(out.residual.len() + 256);
        tail.push_str("\"key\":");
        tail.push_str(&Json::str(key.to_string()).render());
        tail.push_str(",\"ok\":true,\"residual\":");
        tail.push_str(&Json::str(out.residual.clone()).render());
        tail.push_str(",\"stats\":");
        tail.push_str(&stats_json(&out.stats).render());
        tail.push_str(",\"wall_us\":");
        Some(RenderedHit { mid, tail })
    }
}

/// A response wire line pre-rendered around its per-request fields
/// (`cache`, `id`, `wall_us`); see [`SpecializeResponse::hit_template`].
#[derive(Clone, Debug)]
pub struct RenderedHit {
    /// From after `"degradations":` up to (exclusive) the `,` before
    /// `"id"`/`"key"` — the degradations array plus any diagnostics.
    mid: String,
    /// From `"key"` through the `:` after `"wall_us"`.
    tail: String,
}

impl RenderedHit {
    /// Assembles the full wire line for one request over this template's
    /// key. Byte-identical to `response.to_json(id).render()` for every
    /// response [`SpecializeResponse::hit_template`] accepts (object keys
    /// stay in sorted order: cache, degradations, diagnostics, id, key,
    /// ok, residual, stats, wall_us).
    pub fn line(
        &self,
        disposition: CacheDisposition,
        id: Option<&Json>,
        wall_micros: u64,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.mid.len() + self.tail.len() + 64);
        out.push_str("{\"cache\":\"");
        out.push_str(disposition.name());
        out.push_str("\",\"degradations\":");
        out.push_str(&self.mid);
        if let Some(id) = id {
            out.push_str(",\"id\":");
            out.push_str(&id.render());
        }
        out.push(',');
        out.push_str(&self.tail);
        let _ = write!(out, "{wall_micros}");
        out.push('}');
        out
    }
}

/// Renders one diagnostic for the wire (and for `ppe check --format
/// json`): always `code`, `severity`, `message`; `function`/`path` or
/// `line`/`col` only when known, so output is minimal and deterministic.
pub fn diagnostic_json(d: &Diagnostic) -> Json {
    let mut fields = vec![
        ("code", Json::str(d.code)),
        ("severity", Json::str(d.severity.as_str())),
        ("message", Json::str(d.message.clone())),
    ];
    if let Some(f) = d.function {
        fields.push(("function", Json::str(f.as_str())));
    }
    if !d.path.is_empty() {
        fields.push(("path", Json::str(d.path.clone())));
    }
    if d.line > 0 {
        fields.push(("line", Json::num(u64::from(d.line))));
        fields.push(("col", Json::num(u64::from(d.col))));
    }
    Json::obj(fields)
}

/// Renders engine counters for the wire and the disk payload — the one
/// canonical field set both encodings share.
pub fn stats_json(stats: &PeStats) -> Json {
    Json::obj(vec![
        ("reductions", Json::num(stats.reductions)),
        ("residual_prims", Json::num(stats.residual_prims)),
        ("static_branches", Json::num(stats.static_branches)),
        ("dynamic_branches", Json::num(stats.dynamic_branches)),
        ("unfolds", Json::num(stats.unfolds)),
        ("specializations", Json::num(stats.specializations)),
        ("cache_hits", Json::num(stats.cache_hits)),
        ("steps", Json::num(stats.steps)),
    ])
}

/// Renders one degradation event for the wire.
pub fn degradation_json(e: &DegradationEvent) -> Json {
    let mut fields = vec![
        ("budget", Json::str(e.budget.to_string())),
        ("count", Json::num(e.count)),
        ("depth", Json::num(u64::from(e.depth))),
    ];
    if let Some(f) = e.function {
        fields.push(("function", Json::str(f.as_str())));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_roundtrip() {
        for e in [Engine::Online, Engine::Simple, Engine::Offline] {
            assert_eq!(Engine::parse(e.name()).unwrap(), e);
        }
        assert!(Engine::parse("quantum").is_err());
    }

    #[test]
    fn request_from_json_full() {
        let v = Json::parse(
            r#"{"program": "(define (f x) x)", "inputs": ["_:size=3", "5"],
                "engine": "offline", "facets": ["size"], "optimize": true,
                "fuel": 100, "deadline_ms": 50, "on_exhaustion": "degrade"}"#,
        )
        .unwrap();
        let req = SpecializeRequest::from_json(&v).unwrap();
        assert_eq!(req.inputs, vec!["_:size=3", "5"]);
        assert_eq!(req.engine, Engine::Offline);
        assert_eq!(req.facets, vec!["size"]);
        assert!(req.optimize);
        assert_eq!(req.config.fuel, 100);
        assert_eq!(req.config.deadline, Some(Duration::from_millis(50)));
        assert_eq!(req.config.on_exhaustion, ExhaustionPolicy::Degrade);
    }

    #[test]
    fn request_from_json_defaults_and_string_inputs() {
        let v = Json::parse(r#"{"program": "(define (f x) x)", "inputs": "_ 5"}"#).unwrap();
        let req = SpecializeRequest::from_json(&v).unwrap();
        assert_eq!(req.inputs, vec!["_", "5"]);
        assert_eq!(req.engine, Engine::Online);
        assert_eq!(req.facets.len(), ALL_FACETS.len());
        assert!(!req.optimize);
    }

    #[test]
    fn request_from_json_rejects_bad_fields() {
        for bad in [
            r#"{}"#,
            r#"{"program": 5}"#,
            r#"{"program": "p", "engine": "quantum"}"#,
            r#"{"program": "p", "fuel": -1}"#,
            r#"{"program": "p", "inputs": [5]}"#,
            r#"{"program": "p", "on_exhaustion": "panic"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(SpecializeRequest::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn request_from_json_execute() {
        let v = Json::parse(
            r#"{"program": "(define (f x) x)", "inputs": ["_"],
                "execute": ["5"], "exec_engine": "ast"}"#,
        )
        .unwrap();
        let req = SpecializeRequest::from_json(&v).unwrap();
        let exec = req.execute.unwrap();
        assert_eq!(exec.inputs, vec!["5"]);
        assert_eq!(exec.engine, ExecEngine::Ast);

        // String form; the engine defaults to the VM.
        let v = Json::parse(r#"{"program": "p", "inputs": "_", "execute": "1 2"}"#).unwrap();
        let exec = SpecializeRequest::from_json(&v).unwrap().execute.unwrap();
        assert_eq!(exec.inputs, vec!["1", "2"]);
        assert_eq!(exec.engine, ExecEngine::Vm);

        for bad in [
            r#"{"program": "p", "execute": [5]}"#,
            r#"{"program": "p", "execute": 5}"#,
            r#"{"program": "p", "execute": ["1"], "exec_engine": "quantum"}"#,
            r#"{"program": "p", "exec_engine": "vm"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(SpecializeRequest::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn exec_engine_names_roundtrip() {
        for e in [ExecEngine::Vm, ExecEngine::Ast] {
            assert_eq!(ExecEngine::parse(e.name()).unwrap(), e);
        }
        assert!(ExecEngine::parse("tree").is_err());
    }

    #[test]
    fn recursion_depth_is_wire_clamped() {
        let v = Json::parse(r#"{"program": "p", "max_recursion_depth": 30000}"#).unwrap();
        let req = SpecializeRequest::from_json(&v).unwrap();
        assert_eq!(req.config.max_recursion_depth, 30_000);

        let v = Json::parse(r#"{"program": "p", "max_recursion_depth": 4000000000}"#).unwrap();
        let req = SpecializeRequest::from_json(&v).unwrap();
        assert_eq!(
            u64::from(req.config.max_recursion_depth),
            MAX_WIRE_RECURSION_DEPTH,
            "values past the ceiling clamp instead of erroring"
        );
    }

    #[test]
    fn response_json_success_and_error() {
        let ok = SpecializeResponse {
            outcome: Ok(SpecializeOutput {
                residual: "(define (f x) x)".into(),
                stats: PeStats::default(),
                degradations: Vec::new(),
            }),
            disposition: CacheDisposition::Miss,
            key: None,
            wall_micros: 7,
            diagnostics: Vec::new(),
            exec: None,
            shed: false,
        };
        let text = ok.to_json(Some(&Json::num(1))).render();
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(text.contains("\"cache\":\"miss\""), "{text}");
        assert!(text.contains("\"id\":1"), "{text}");

        let err = SpecializeResponse::error("no such program");
        let text = err.to_json(None).render();
        assert!(text.contains("\"ok\":false"), "{text}");
        assert!(text.contains("no such program"), "{text}");
    }

    #[test]
    fn hit_template_assembly_matches_tree_render() {
        let mut resp = SpecializeResponse {
            outcome: Ok(SpecializeOutput {
                residual: "(define (f x)\n  (* x \"two\"))\n".into(),
                stats: PeStats {
                    reductions: 3,
                    unfolds: 2,
                    ..PeStats::default()
                },
                degradations: Vec::new(),
            }),
            disposition: CacheDisposition::Miss,
            key: Some(CacheKey(0xfeed_beef)),
            wall_micros: 42,
            diagnostics: Vec::new(),
            exec: None,
            shed: false,
        };
        let template = resp.hit_template().expect("template-eligible");
        // Every per-request combination the template path serves must be
        // byte-identical to the tree render.
        for disposition in [CacheDisposition::Miss, CacheDisposition::Hit] {
            resp.disposition = disposition;
            for (id, wall) in [(Some(Json::num(9)), 1u64), (None, 123456)] {
                resp.wall_micros = wall;
                assert_eq!(
                    template.line(disposition, id.as_ref(), wall),
                    resp.to_json(id.as_ref()).render(),
                );
            }
        }

        // Diagnostics are per-key-stable and ride inside the template.
        resp.diagnostics = vec![Diagnostic::warning("W0001", "unused parameter")];
        let template = resp.hit_template().expect("template-eligible");
        assert_eq!(
            template.line(resp.disposition, None, resp.wall_micros),
            resp.to_json(None).render(),
        );

        // Per-request payload disqualifies caching entirely.
        resp.shed = true;
        assert!(resp.hit_template().is_none(), "shed responses vary");
        resp.shed = false;
        resp.key = None;
        assert!(resp.hit_template().is_none(), "keyless responses");
        resp.key = Some(CacheKey(1));
        resp.outcome = Err("boom".into());
        assert!(resp.hit_template().is_none(), "errors are not cacheable");
    }
}
