//! Per-worker request execution: resolving a plain-data request into
//! parsed forms and running the selected engine.
//!
//! Everything here is thread-*local* by design: `FacetSet`, `PeInput`,
//! and `Analysis` are `Rc`-backed and must not cross threads, so each
//! worker re-derives them from the request's strings. The expensive
//! artifacts that are worth sharing — parsed [`Program`]s (plain data)
//! and finished residuals — live in the service's shared caches instead.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

use ppe_core::{FacetSet, ProductVal};
use ppe_lang::{optimize_program, pretty_program, prune_unused_params, OptLevel, Program, Symbol};
use ppe_offline::{analyze_fn_with_config, AbstractInput, Analysis, OfflinePe};
use ppe_online::{OnlinePe, PeConfig, PeInput, SimpleInput, SimplePe};

use ppe_lang::{Evaluator, Value};
use ppe_vm::VmOptions;

use crate::cache::CachedOutcome;
use crate::key::{analysis_key, residual_key, CacheKey};
use crate::metrics::Metrics;
use crate::request::{
    Engine, ExecEngine, ExecOutcome, ExecuteRequest, SpecEngine, SpecializeRequest,
};
use crate::spec;

/// The request's [`PeConfig`] with the static-evaluation backend the
/// request chose installed: `spec_engine: vm` (the default) threads the
/// shared [`ppe_vm::VmStaticEval`] handle through the engine so fully
/// static subtrees replay on bytecode; `ast` leaves the engines' tree
/// walk in charge (the differential oracle). Residuals are identical
/// either way, so this never touches the cache key.
fn effective_config(req: &SpecializeRequest) -> PeConfig {
    let mut config = req.config.clone();
    config.spec_eval = match req.spec_engine {
        SpecEngine::Vm => Some(Arc::new(ppe_vm::VmStaticEval)),
        SpecEngine::Ast => None,
    };
    config
}

/// Per-worker state that outlives single requests: the offline engine's
/// analysis cache. Keyed by [`analysis_key`], so one worker that sees a
/// stream of requests against the same program and abstract inputs runs
/// facet analysis once and reuses the signatures for every subsequent
/// specialization (the satellite of arXiv:1908.07189's observation that
/// polyvariant workloads repeat abstract properties).
#[derive(Default)]
pub struct EngineContext {
    analyses: HashMap<CacheKey, Rc<Analysis>>,
}

impl EngineContext {
    /// A fresh, empty context.
    pub fn new() -> EngineContext {
        EngineContext::default()
    }

    /// Number of cached analyses (for tests).
    pub fn cached_analyses(&self) -> usize {
        self.analyses.len()
    }
}

/// A request resolved against parsed program and facets — ready to key
/// and run. Thread-local (holds `Rc`-backed values).
pub(crate) struct Resolved {
    pub program: Arc<Program>,
    /// The entry symbol's transitive-closure fingerprint
    /// (`ppe_analyze::depgraph`): the program component of both cache
    /// keys. Editing a definition the entry cannot reach leaves it — and
    /// therefore every cached artifact — untouched.
    pub closure_fingerprint: u64,
    pub entry: Symbol,
    pub facets: FacetSet,
    pub inputs: Vec<PeInput>,
    pub products: Vec<ProductVal>,
    pub key: CacheKey,
}

/// Parses facets and inputs and computes the cache key.
pub(crate) fn resolve(
    req: &SpecializeRequest,
    program: Arc<Program>,
    depgraph: &ppe_analyze::depgraph::DepGraph,
) -> Result<Resolved, String> {
    let entry = match &req.function {
        Some(name) => {
            let sym = Symbol::intern(name);
            if program.lookup(sym).is_none() {
                return Err(format!("no function `{name}` in the program"));
            }
            sym
        }
        None => program.main().name,
    };
    let closure_fingerprint = depgraph
        .closure_fingerprint(entry)
        .expect("entry was just validated against the same program");
    let facets = spec::build_facets(&req.facets)?;
    let inputs: Vec<PeInput> = req
        .inputs
        .iter()
        .map(|s| spec::parse_input(s))
        .collect::<Result<_, _>>()?;
    let arity = program
        .lookup(entry)
        .expect("entry was just validated")
        .arity();
    if arity != inputs.len() {
        return Err(format!(
            "`{entry}` expects {arity} inputs but the request has {}",
            inputs.len()
        ));
    }
    let products: Vec<ProductVal> = inputs
        .iter()
        .map(|i| i.to_product(&facets).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let key = residual_key(
        closure_fingerprint,
        entry.as_str(),
        req.engine,
        &req.facets,
        &products,
        req.optimize,
        &req.config,
    );
    Ok(Resolved {
        program,
        closure_fingerprint,
        entry,
        facets,
        inputs,
        products,
        key,
    })
}

/// Runs the requested engine to completion and renders the outcome.
pub(crate) fn run(
    req: &SpecializeRequest,
    resolved: &Resolved,
    ctx: &mut EngineContext,
    metrics: &Metrics,
) -> Result<CachedOutcome, String> {
    let config = effective_config(req);
    let residual = match req.engine {
        Engine::Online => OnlinePe::with_config(&resolved.program, &resolved.facets, config)
            .specialize(resolved.entry, &resolved.inputs)
            .map_err(|e| e.to_string())?,
        Engine::Simple => {
            let simple_inputs: Vec<SimpleInput> = resolved
                .inputs
                .iter()
                .map(|i| match i {
                    // Structured values (vectors) have no Const form; the
                    // simple engine treats them — like all refinements —
                    // as dynamic.
                    PeInput::Known(v) => v
                        .to_const()
                        .map(SimpleInput::Known)
                        .unwrap_or(SimpleInput::Dynamic),
                    PeInput::Dynamic { .. } => SimpleInput::Dynamic,
                })
                .collect();
            SimplePe::with_config(&resolved.program, config)
                .specialize(resolved.entry, &simple_inputs)
                .map_err(|e| e.to_string())?
        }
        Engine::Offline => {
            let analysis = cached_analysis(req, resolved, ctx, metrics)?;
            OfflinePe::with_config(&resolved.program, &resolved.facets, &analysis, config)
                .specialize(&resolved.inputs)
                .map_err(|e| e.to_string())?
        }
    };
    let rendered = if req.optimize {
        prune_unused_params(
            &optimize_program(&residual.program, OptLevel::Safe),
            OptLevel::Safe,
        )
    } else {
        residual.program
    };
    Ok(CachedOutcome {
        residual: pretty_program(&rendered),
        stats: residual.stats,
        degradations: residual.report.events().to_vec(),
        entry: resolved.entry.as_str().to_owned(),
        closure_fingerprint: resolved.closure_fingerprint,
    })
}

/// Runs a residual program on concrete inputs — the `"execute"` path.
///
/// Infallible by design: every failure (unparseable input value, runtime
/// error, exhausted budget) lands in the outcome's `value` field, because
/// by this point specialization has *succeeded* and the response should
/// carry the residual either way. Budgets come from the same [`PeConfig`]
/// that governed specialization: `fuel` meters function applications and
/// `deadline` bounds wall clock, on both engines identically.
pub(crate) fn execute_residual(
    residual: &Program,
    exec: &ExecuteRequest,
    config: &PeConfig,
    metrics: &Metrics,
) -> ExecOutcome {
    metrics.executes.fetch_add(1, Relaxed);
    let mut outcome = ExecOutcome {
        value: Err(String::new()),
        engine: exec.engine,
        chunks_compiled: 0,
        chunk_cache_hit: false,
        ops_executed: 0,
        fuel_used: 0,
    };
    let args: Result<Vec<Value>, String> = exec
        .inputs
        .iter()
        .map(|s| spec::parse_value(s).map_err(|e| format!("execute input: {e}")))
        .collect();
    match args {
        Err(msg) => outcome.value = Err(msg),
        Ok(args) => match exec.engine {
            ExecEngine::Vm => {
                let opts = VmOptions {
                    fuel: config.fuel,
                    deadline: config.deadline,
                    ..VmOptions::default()
                };
                let (out, report) = ppe_vm::execute_main(residual, &args, opts);
                outcome.value = out.map(|v| v.to_string()).map_err(|e| e.to_string());
                outcome.chunks_compiled = report.chunks_compiled;
                outcome.chunk_cache_hit = report.cache_hit;
                outcome.ops_executed = report.ops_executed;
                outcome.fuel_used = report.fuel_used;
                metrics
                    .vm_chunks_compiled
                    .fetch_add(report.chunks_compiled, Relaxed);
                if report.cache_hit {
                    metrics.vm_chunk_cache_hits.fetch_add(1, Relaxed);
                }
                metrics
                    .vm_opcodes_executed
                    .fetch_add(report.ops_executed, Relaxed);
            }
            ExecEngine::Ast => {
                let mut ev = Evaluator::with_fuel(residual, config.fuel);
                ev.set_deadline(config.deadline);
                outcome.value = ev
                    .run_main(&args)
                    .map(|v| v.to_string())
                    .map_err(|e| e.to_string());
                outcome.fuel_used = ev.fuel_used();
            }
        },
    }
    if outcome.value.is_err() {
        metrics.exec_errors.fetch_add(1, Relaxed);
    }
    outcome
}

/// Facet analysis for the offline engine, memoized per worker.
fn cached_analysis(
    req: &SpecializeRequest,
    resolved: &Resolved,
    ctx: &mut EngineContext,
    metrics: &Metrics,
) -> Result<Rc<Analysis>, String> {
    let akey = analysis_key(
        resolved.closure_fingerprint,
        resolved.entry.as_str(),
        &req.facets,
        &resolved.products,
        &req.config,
    );
    if let Some(analysis) = ctx.analyses.get(&akey) {
        metrics.analysis_hits.fetch_add(1, Relaxed);
        return Ok(Rc::clone(analysis));
    }
    let abstract_inputs: Vec<AbstractInput> = resolved
        .products
        .iter()
        .cloned()
        .map(AbstractInput::of_product)
        .collect();
    let analysis = analyze_fn_with_config(
        &resolved.program,
        &resolved.facets,
        resolved.entry,
        &abstract_inputs,
        &req.config,
    )
    .map_err(|e| e.to_string())?;
    metrics.analysis_misses.fetch_add(1, Relaxed);
    let analysis = Rc::new(analysis);
    // The analysis cache is bounded by distinct (program, inputs, policy)
    // combinations a worker sees; cap it so a serve loop fed unbounded
    // distinct programs cannot grow without limit.
    if ctx.analyses.len() >= 256 {
        ctx.analyses.clear();
    }
    ctx.analyses.insert(akey, Rc::clone(&analysis));
    Ok(analysis)
}
