//! ppe-server: a concurrent specialization service over the PPE engines.
//!
//! The seed crates answer one specialization at a time: parse, specialize,
//! print, exit. This crate turns that into a long-lived service:
//!
//! - [`SpecializeService`] — the shared state: a sharded, content-addressed
//!   [`ResidualCache`] (single-flight deduplication, byte-budgeted LRU
//!   eviction), an optional crash-safe disk [`PersistTier`] beneath it
//!   (warm starts survive restarts; see `persist`), plus lock-free
//!   [`Metrics`].
//! - [`run_batch`] — a work-stealing batch driver over a fixed pool of
//!   big-stack worker threads; responses come back in request order.
//! - [`serve`] — a JSON-lines request/response loop (one line in, one line
//!   out, in order) for driving the service from another process.
//! - [`NetServer`] — the TCP front-end: the same line protocol per
//!   connection, with bounded concurrency, deadline-clamping/load-shedding
//!   admission control ([`RequestGovernor`]), graceful drain, and
//!   `health`/`ready`/Prometheus-`metrics` control commands.
//!
//! The central design constraint is that the engines' abstract values are
//! `Rc`-backed and must stay on one thread. So a [`SpecializeRequest`] is
//! plain data (source text, input-spec strings, a `PeConfig`), each worker
//! re-derives the parsed forms locally, and the things actually worth
//! sharing — parsed programs, finished residuals, metrics — are plain data
//! behind their own synchronization. Cache keys hash symbol *spellings*
//! and canonical product renderings (never interner ids), so every thread
//! and every process agrees on them; see `DESIGN.md` § "Service layer" for
//! the soundness argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod driver;
mod engine;
pub mod json;
pub mod key;
pub mod metrics;
pub mod net;
pub mod persist;
pub mod request;
pub mod serve;
pub mod service;
pub mod spec;

pub use cache::ResidualCache;
pub use driver::{run_batch, BatchOptions, WORKER_STACK_BYTES};
pub use engine::EngineContext;
pub use json::Json;
pub use key::{analysis_key, residual_key, CacheKey};
pub use metrics::{Metrics, MetricsSnapshot, WALL_BUCKETS};
pub use net::{NetOptions, NetServer, NetSummary};
pub use persist::{
    DiskStats, FaultKind, FaultReport, GcReport, PersistConfig, PersistMode, PersistTier,
    StaleGcReport, FORMAT_VERSION,
};
pub use request::{
    CacheDisposition, Engine, ExecEngine, ExecOutcome, ExecuteRequest, RenderedHit,
    SpecializeOutput, SpecializeRequest, SpecializeResponse, MAX_WIRE_RECURSION_DEPTH,
};
pub use serve::{
    handle_session, serve, RequestGovernor, ServeOptions, ServeSummary, SessionOptions,
    MAX_LINE_BYTES,
};
pub use service::{ServiceConfig, SpecializeService};

#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_types_cross_threads() {
        assert_send_sync::<ppe_lang::Program>();
        assert_send_sync::<SpecializeRequest>();
        assert_send_sync::<SpecializeResponse>();
        assert_send_sync::<SpecializeService>();
        assert_send_sync::<ResidualCache>();
        assert_send_sync::<Metrics>();
    }
}
