//! The serve loop: JSON-lines requests on a reader, JSON-lines responses
//! on a writer.
//!
//! One input line is one request object (see
//! [`SpecializeRequest::from_json`]) and produces exactly one output
//! line, *in input order* even when several workers answer concurrently —
//! a reordering writer buffers out-of-order completions. Lines whose
//! object carries a `cmd` field are control messages:
//!
//! - `{"cmd": "metrics"}` — a point-in-time [`crate::metrics`] snapshot;
//!   with `"format": "prometheus"` the snapshot is returned as Prometheus
//!   exposition text in a `prometheus` string field.
//! - `{"cmd": "health"}` — liveness: answers `{"ok":true,"health":"ok"}`.
//! - `{"cmd": "ready"}` — readiness: `ready` is `false` once the server
//!   is draining (always `true` on a plain stdio session).
//! - `{"cmd": "shutdown"}` — acknowledge, finish in-flight work, stop.
//!
//! Malformed lines answer `{"ok": false, "error": ...}` rather than
//! killing the session: a service must outlive its worst client. That
//! includes lines the reader cannot even hand to the JSON parser: a line
//! longer than [`MAX_LINE_BYTES`] is drained (never buffered whole) and
//! answered with a structured error, and a line that is not valid UTF-8
//! is dropped the same way. Only real I/O errors end the session.
//!
//! The same core loop serves two transports: [`serve`] drives it over
//! stdio (with an optional worker pool and a reordering writer), and the
//! TCP front-end ([`crate::net`]) runs one [`handle_session`] per
//! connection, layering admission control and drain awareness on top via
//! [`SessionOptions`].

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use ppe_online::ExhaustionPolicy;

use crate::driver::WORKER_STACK_BYTES;
use crate::engine::EngineContext;
use crate::json::Json;
use crate::key::CacheKey;
use crate::metrics::Metrics;
use crate::request::{RenderedHit, SpecializeRequest, SpecializeResponse};
use crate::service::SpecializeService;

/// Longest request line the serve loop will buffer, in bytes.
///
/// Longer lines are drained in chunks (bounded memory regardless of how
/// much a client sends) and answered with a structured error; the session
/// then continues with the next line.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Knobs for one serve session.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker count; `0` and `1` both mean "answer on the calling thread".
    pub jobs: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions { jobs: 1 }
    }
}

/// Admission control the front-end applies to every specialize request
/// before it reaches the engines: a deadline cap, and load shedding once
/// too many requests are executing at once.
///
/// Shedding is deliberately *graceful*: a shed request is not refused, it
/// is forced onto [`ExhaustionPolicy::Degrade`] with a tight deadline, so
/// the client still gets a correct (if less specialized) residual plus a
/// `"shed": true` marker — and a warm cache hit under pressure still
/// answers at full quality in microseconds.
#[derive(Clone, Copy, Debug)]
pub struct RequestGovernor {
    /// Cap applied to every request's deadline (`min` with the client's
    /// own, if any). `None` leaves client deadlines untouched.
    pub request_deadline: Option<Duration>,
    /// Shed once this many requests are already executing.
    pub max_inflight: u64,
    /// The deadline forced onto shed requests.
    pub shed_deadline: Duration,
}

impl RequestGovernor {
    /// Applies admission control to `req`, returning whether it was shed.
    pub fn admit(&self, req: &mut SpecializeRequest, metrics: &Metrics) -> bool {
        if let Some(cap) = self.request_deadline {
            req.config.deadline = Some(req.config.deadline.map_or(cap, |d| d.min(cap)));
        }
        if metrics.inflight.load(Relaxed) < self.max_inflight {
            return false;
        }
        req.config.on_exhaustion = ExhaustionPolicy::Degrade;
        req.config.deadline = Some(
            req.config
                .deadline
                .map_or(self.shed_deadline, |d| d.min(self.shed_deadline)),
        );
        metrics.shed.fetch_add(1, Relaxed);
        true
    }
}

/// Per-session hooks a transport layers on top of the core line loop.
///
/// The default (all `None`) is the plain stdio session, byte-identical to
/// the pre-TCP serve loop. The TCP front-end supplies all four: a
/// [`RequestGovernor`], the server-wide drain flag, a callback that
/// triggers the drain when *this* session receives `{"cmd":"shutdown"}`,
/// and an interrupt predicate polled on read timeouts so idle sessions
/// notice the drain without a read deadline elapsing into an error.
#[derive(Clone, Copy, Default)]
pub struct SessionOptions<'a> {
    /// Admission control for specialize requests.
    pub governor: Option<&'a RequestGovernor>,
    /// Server-wide drain flag; once set, the session exits after the
    /// request it is currently answering.
    pub draining: Option<&'a AtomicBool>,
    /// Invoked after this session acknowledges a `shutdown` command.
    pub on_shutdown: Option<&'a (dyn Fn() + Sync)>,
    /// Polled when a read times out (`WouldBlock`/`TimedOut`); returning
    /// `true` ends the session as if the input reached end-of-file.
    /// Without it, read timeouts propagate as I/O errors.
    pub interrupt: Option<&'a (dyn Fn() -> bool + Sync)>,
}

impl std::fmt::Debug for SessionOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionOptions")
            .field("governor", &self.governor)
            .field("draining", &self.draining)
            .field("on_shutdown", &self.on_shutdown.map(|_| "..."))
            .field("interrupt", &self.interrupt.map(|_| "..."))
            .finish()
    }
}

/// What one serve session processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Non-empty input lines consumed.
    pub lines: u64,
    /// Specialization requests dispatched (excludes control messages).
    pub requests: u64,
    /// Responses with `ok: false` (parse, validation, or engine errors).
    pub errors: u64,
}

/// Runs the serve loop over `input`/`output` until end-of-input or a
/// `shutdown` command.
///
/// # Errors
///
/// Only I/O errors on `input`/`output` end the session abnormally;
/// request-level failures become `ok: false` response lines.
pub fn serve(
    service: &SpecializeService,
    input: impl BufRead,
    output: impl Write + Send,
    options: ServeOptions,
) -> io::Result<ServeSummary> {
    if options.jobs <= 1 {
        return serve_inline(service, input, output);
    }
    serve_parallel(service, input, output, options.jobs)
}

/// Session-local cache of pre-rendered response templates, keyed by
/// cache key. Rendering dominates the warm-hit serve path (a multi-KB
/// residual re-escaped per response), so repeat answers assemble from a
/// template instead (see [`SpecializeResponse::hit_template`]). Bounded:
/// past [`RenderCache::CAP`] keys it starts over — a session cycling
/// through more hot keys than that is re-rendering either way.
struct RenderCache {
    map: HashMap<CacheKey, RenderedHit>,
}

impl RenderCache {
    const CAP: usize = 512;

    fn new() -> RenderCache {
        RenderCache {
            map: HashMap::new(),
        }
    }

    /// Renders `response`'s wire line, through the template cache when
    /// the response is template-eligible.
    fn line(&mut self, response: &SpecializeResponse, id: Option<&Json>) -> String {
        if let Some(key) = response.key.filter(|_| response.outcome.is_ok()) {
            if let Some(template) = self.map.get(&key) {
                if !response.shed && response.exec.is_none() {
                    return template.line(response.disposition, id, response.wall_micros);
                }
            } else if let Some(template) = response.hit_template() {
                let line = template.line(response.disposition, id, response.wall_micros);
                if self.map.len() >= RenderCache::CAP {
                    self.map.clear();
                }
                self.map.insert(key, template);
                return line;
            }
        }
        response.to_json(id).render()
    }
}

/// One request line end-to-end on the calling thread. Takes the line
/// already parsed (or its parse error) so callers that must inspect the
/// line themselves — for `cmd` routing, shutdown detection, request
/// counting — parse exactly once.
fn answer(
    service: &SpecializeService,
    ctx: &mut EngineContext,
    parsed: Result<Json, String>,
    errors: &AtomicU64,
    session: &SessionOptions<'_>,
    renders: &mut RenderCache,
) -> Option<String> {
    let parsed = match parsed {
        Ok(v) => v,
        Err(e) => {
            errors.fetch_add(1, Relaxed);
            return Some(error_line(format!("bad JSON: {e}"), None));
        }
    };
    if let Some(cmd) = parsed.get("cmd").and_then(Json::as_str) {
        return control_line(service, cmd, &parsed, session, errors);
    }
    let id = parsed.get("id").cloned();
    let response = match SpecializeRequest::from_json(&parsed) {
        Ok(mut req) => {
            let metrics = service.metrics();
            let shed = match session.governor {
                Some(gov) => gov.admit(&mut req, metrics),
                None => false,
            };
            metrics.inflight.fetch_add(1, Relaxed);
            let mut response = service.handle(&req, ctx);
            metrics.inflight.fetch_sub(1, Relaxed);
            response.shed = shed;
            response
        }
        Err(e) => SpecializeResponse::error(e),
    };
    if response.outcome.is_err() {
        errors.fetch_add(1, Relaxed);
    }
    Some(renders.line(&response, id.as_ref()))
}

/// Renders a control command's response line.
fn control_line(
    service: &SpecializeService,
    cmd: &str,
    parsed: &Json,
    session: &SessionOptions<'_>,
    errors: &AtomicU64,
) -> Option<String> {
    let mut fields = match cmd {
        "metrics" => match parsed.get("format").and_then(Json::as_str) {
            None | Some("json") => vec![
                ("ok", Json::Bool(true)),
                ("metrics", service.metrics().snapshot().to_json()),
            ],
            Some("prometheus") => vec![
                ("ok", Json::Bool(true)),
                (
                    "prometheus",
                    Json::str(service.metrics().snapshot().to_prometheus()),
                ),
            ],
            Some(other) => {
                errors.fetch_add(1, Relaxed);
                vec![
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::str(format!(
                            "unknown metrics format `{other}` (json|prometheus)"
                        )),
                    ),
                ]
            }
        },
        "health" => vec![("ok", Json::Bool(true)), ("health", Json::str("ok"))],
        "ready" => {
            let draining = session.draining.is_some_and(|d| d.load(Relaxed));
            vec![("ok", Json::Bool(true)), ("ready", Json::Bool(!draining))]
        }
        "shutdown" => vec![("ok", Json::Bool(true)), ("shutdown", Json::Bool(true))],
        other => {
            errors.fetch_add(1, Relaxed);
            vec![
                ("ok", Json::Bool(false)),
                ("error", Json::str(format!("unknown command `{other}`"))),
            ]
        }
    };
    if let Some(id) = parsed.get("id") {
        fields.push(("id", id.clone()));
    }
    Some(Json::obj(fields).render())
}

fn error_line(message: String, id: Option<&Json>) -> String {
    let mut fields = vec![("ok", Json::Bool(false)), ("error", Json::str(message))];
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    Json::obj(fields).render()
}

/// One unit of input as seen by the serve loops.
enum Frame {
    /// A non-empty line that fit the cap and decoded as UTF-8.
    Request(String),
    /// A line the reader refused; the payload is the error message to
    /// answer with. The offending bytes are already drained.
    Reject(String),
    /// End of input.
    Eof,
}

/// Reads the next non-empty line, enforcing [`MAX_LINE_BYTES`].
///
/// Oversized lines are consumed chunk-by-chunk off the reader without
/// ever holding more than the cap in memory, so a hostile client cannot
/// balloon the server by omitting newlines.
///
/// A read that times out (`WouldBlock`/`TimedOut` — a socket with a read
/// timeout) polls `interrupt`: `true` ends the session as end-of-file,
/// `false` resumes the read with any partially-buffered line intact. With
/// no interrupt hook, timeouts propagate as the I/O errors they are.
fn next_frame(
    input: &mut impl BufRead,
    interrupt: Option<&(dyn Fn() -> bool + Sync)>,
) -> io::Result<Frame> {
    loop {
        let mut buf: Vec<u8> = Vec::new();
        let mut overflowed = false;
        let mut saw_any = false;
        loop {
            let chunk = match input.fill_buf() {
                Ok(chunk) => chunk,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) && interrupt.is_some() =>
                {
                    if interrupt.is_some_and(|f| f()) {
                        return Ok(Frame::Eof);
                    }
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                if !saw_any {
                    return Ok(Frame::Eof);
                }
                break;
            }
            saw_any = true;
            if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                if !overflowed && buf.len() + pos <= MAX_LINE_BYTES {
                    buf.extend_from_slice(&chunk[..pos]);
                } else {
                    overflowed = true;
                }
                input.consume(pos + 1);
                break;
            }
            let len = chunk.len();
            if !overflowed && buf.len() + len <= MAX_LINE_BYTES {
                buf.extend_from_slice(chunk);
            } else {
                overflowed = true;
            }
            input.consume(len);
        }
        if overflowed {
            return Ok(Frame::Reject(format!(
                "request line exceeds {MAX_LINE_BYTES} bytes; line dropped"
            )));
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        match String::from_utf8(buf) {
            Ok(line) if line.trim().is_empty() => continue,
            Ok(line) => return Ok(Frame::Request(line)),
            Err(_) => {
                return Ok(Frame::Reject(
                    "request line is not valid UTF-8; line dropped".to_owned(),
                ))
            }
        }
    }
}

fn serve_inline(
    service: &SpecializeService,
    input: impl BufRead,
    output: impl Write,
) -> io::Result<ServeSummary> {
    handle_session(service, input, output, &SessionOptions::default())
}

/// Runs one line-loop session over any transport: requests answered on
/// the calling thread, in order.
///
/// This is the core the stdio loop and the TCP front-end share. With
/// default [`SessionOptions`] it is exactly the single-threaded stdio
/// serve loop; the hooks add admission control, drain awareness, and
/// shutdown propagation without forking the loop per transport (the 1 MiB
/// line cap and invalid-UTF-8 hardening apply identically everywhere).
///
/// # Errors
///
/// Only I/O errors on `input`/`output` end the session abnormally;
/// request-level failures become `ok: false` response lines.
pub fn handle_session(
    service: &SpecializeService,
    mut input: impl BufRead,
    mut output: impl Write,
    session: &SessionOptions<'_>,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let errors = AtomicU64::new(0);
    let mut ctx = EngineContext::new();
    let mut renders = RenderCache::new();
    loop {
        if session.draining.is_some_and(|d| d.load(Relaxed)) {
            break;
        }
        let line = match next_frame(&mut input, session.interrupt)? {
            Frame::Eof => break,
            Frame::Reject(message) => {
                summary.lines += 1;
                errors.fetch_add(1, Relaxed);
                writeln!(output, "{}", error_line(message, None))?;
                output.flush()?;
                continue;
            }
            Frame::Request(line) => line,
        };
        summary.lines += 1;
        let parsed = Json::parse(&line);
        let cmd = parsed
            .as_ref()
            .ok()
            .and_then(|v| v.get("cmd").and_then(Json::as_str));
        let shutdown = cmd == Some("shutdown");
        if cmd.is_none() {
            summary.requests += 1;
        }
        if let Some(rendered) = answer(service, &mut ctx, parsed, &errors, session, &mut renders) {
            writeln!(output, "{rendered}")?;
            output.flush()?;
        }
        if shutdown {
            if let Some(hook) = session.on_shutdown {
                hook();
            }
            break;
        }
    }
    summary.errors = errors.load(Relaxed);
    Ok(summary)
}

fn serve_parallel(
    service: &SpecializeService,
    mut input: impl BufRead,
    output: impl Write + Send,
    jobs: usize,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let errors = AtomicU64::new(0);
    let (job_tx, job_rx) = mpsc::channel::<(u64, String)>();
    let job_rx = Mutex::new(job_rx);
    let (out_tx, out_rx) = mpsc::channel::<(u64, String)>();

    let written = thread::scope(|scope| -> io::Result<ServeSummary> {
        let writer = scope.spawn(move || write_ordered(output, out_rx));
        let mut workers = 0usize;
        for worker in 0..jobs {
            let job_rx = &job_rx;
            let out_tx = out_tx.clone();
            let errors = &errors;
            let spawned = thread::Builder::new()
                .name(format!("ppe-serve-{worker}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    let mut ctx = EngineContext::new();
                    let mut renders = RenderCache::new();
                    loop {
                        let job = job_rx.lock().expect("job queue poisoned").recv();
                        let Ok((seq, line)) = job else { return };
                        let session = SessionOptions::default();
                        let parsed = Json::parse(&line);
                        if let Some(rendered) =
                            answer(service, &mut ctx, parsed, errors, &session, &mut renders)
                        {
                            if out_tx.send((seq, rendered)).is_err() {
                                return;
                            }
                        }
                    }
                });
            if spawned.is_ok() {
                workers += 1;
            }
        }

        let mut inline_ctx = EngineContext::new();
        let mut inline_renders = RenderCache::new();
        let mut seq = 0u64;
        loop {
            let line = match next_frame(&mut input, None)? {
                Frame::Eof => break,
                Frame::Reject(message) => {
                    summary.lines += 1;
                    errors.fetch_add(1, Relaxed);
                    let _ = out_tx.send((seq, error_line(message, None)));
                    seq += 1;
                    continue;
                }
                Frame::Request(line) => line,
            };
            summary.lines += 1;
            let parsed = Json::parse(&line).ok();
            let cmd = parsed
                .as_ref()
                .and_then(|v| v.get("cmd").and_then(Json::as_str).map(str::to_owned));
            match cmd.as_deref() {
                Some(cmd) => {
                    // Control messages answer on the read thread, but go
                    // through the same sequenced writer so their position
                    // in the output matches their position in the input.
                    let parsed = parsed.as_ref().expect("cmd implies parsed");
                    let session = SessionOptions::default();
                    if let Some(rendered) = control_line(service, cmd, parsed, &session, &errors) {
                        let _ = out_tx.send((seq, rendered));
                    }
                    seq += 1;
                    if cmd == "shutdown" {
                        break;
                    }
                }
                None => {
                    summary.requests += 1;
                    if workers == 0 {
                        // Could not spawn any worker: degrade to inline.
                        let session = SessionOptions::default();
                        if let Some(rendered) = answer(
                            service,
                            &mut inline_ctx,
                            Json::parse(&line),
                            &errors,
                            &session,
                            &mut inline_renders,
                        ) {
                            let _ = out_tx.send((seq, rendered));
                        }
                    } else {
                        job_tx
                            .send((seq, line))
                            .expect("workers outlive the read loop");
                    }
                    seq += 1;
                }
            }
        }
        drop(job_tx); // workers drain and exit
        drop(out_tx); // writer sees the channel close once workers finish
        writer.join().expect("writer panicked")?;
        Ok(summary)
    })?;
    let mut summary = written;
    summary.errors = errors.load(Relaxed);
    Ok(summary)
}

/// Drains `(seq, line)` completions, writing them strictly in `seq` order.
fn write_ordered(mut output: impl Write, rx: mpsc::Receiver<(u64, String)>) -> io::Result<()> {
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut next = 0u64;
    for (seq, line) in rx {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            writeln!(output, "{line}")?;
            output.flush()?;
            next += 1;
        }
    }
    // Shutdown mid-stream can retire sequence numbers without responses
    // (skipped dispatches); flush whatever completed, in order.
    for (_, line) in pending {
        writeln!(output, "{line}")?;
    }
    output.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, SpecializeService};

    const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";

    fn run_bytes(input: &[u8], jobs: usize) -> (Vec<String>, ServeSummary) {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut out = Vec::new();
        let summary = serve(&service, input, &mut out, ServeOptions { jobs }).unwrap();
        let lines = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        (lines, summary)
    }

    fn run(input: &str, jobs: usize) -> (Vec<String>, ServeSummary) {
        run_bytes(input.as_bytes(), jobs)
    }

    fn request_line(id: u64, n: u64) -> String {
        format!(r#"{{"id": {id}, "program": "{POWER}", "inputs": "_ {n}"}}"#)
    }

    #[test]
    fn one_line_in_one_line_out() {
        let input = format!("{}\n", request_line(1, 3));
        let (lines, summary) = run(&input, 1);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"id\":1"), "{}", lines[0]);
        assert_eq!(
            summary,
            ServeSummary {
                lines: 1,
                requests: 1,
                errors: 0
            }
        );
    }

    #[test]
    fn bad_json_and_bad_requests_answer_errors() {
        let input = format!(
            "this is not json\n{{\"program\": \"(\"}}\n{}\n",
            request_line(9, 2)
        );
        let (lines, summary) = run(&input, 1);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("bad JSON"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(lines[2].contains("\"ok\":true"), "{}", lines[2]);
        assert_eq!(summary.errors, 2);
    }

    #[test]
    fn metrics_and_shutdown_commands() {
        let input = format!(
            "{}\n{{\"cmd\": \"metrics\"}}\n{{\"cmd\": \"shutdown\"}}\n{}\n",
            request_line(1, 2),
            request_line(2, 3)
        );
        let (lines, summary) = run(&input, 1);
        assert_eq!(lines.len(), 3, "request, metrics, shutdown ack: {lines:?}");
        assert!(lines[1].contains("\"requests\":1"), "{}", lines[1]);
        assert!(lines[2].contains("\"shutdown\":true"), "{}", lines[2]);
        assert_eq!(summary.lines, 3, "the post-shutdown line is never read");
    }

    #[test]
    fn oversized_line_answers_error_and_loop_survives() {
        // A newline-free 1 MiB+ blast, then a legitimate request: the
        // oversized line must be drained (not buffered) and answered with
        // a structured error, and the next request must still succeed.
        for jobs in [1, 4] {
            let mut input = String::with_capacity(MAX_LINE_BYTES + 256);
            input.push_str(&"x".repeat(MAX_LINE_BYTES + 17));
            input.push('\n');
            input.push_str(&request_line(7, 2));
            input.push('\n');
            let (lines, summary) = run(&input, jobs);
            assert_eq!(lines.len(), 2, "jobs={jobs}: {lines:?}");
            assert!(lines[0].contains("\"ok\":false"), "{}", lines[0]);
            assert!(lines[0].contains("exceeds"), "{}", lines[0]);
            assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
            assert!(lines[1].contains("\"id\":7"), "{}", lines[1]);
            assert_eq!(summary.lines, 2, "jobs={jobs}");
            assert_eq!(summary.errors, 1, "jobs={jobs}");
        }
    }

    #[test]
    fn invalid_utf8_line_answers_error_and_loop_survives() {
        for jobs in [1, 4] {
            let mut input: Vec<u8> = vec![0xff, 0xfe, b'{', 0x80, b'\n'];
            input.extend_from_slice(request_line(3, 1).as_bytes());
            input.push(b'\n');
            let (lines, summary) = run_bytes(&input, jobs);
            assert_eq!(lines.len(), 2, "jobs={jobs}: {lines:?}");
            assert!(lines[0].contains("not valid UTF-8"), "{}", lines[0]);
            assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
            assert_eq!(summary.errors, 1, "jobs={jobs}");
        }
    }

    #[test]
    fn line_exactly_at_cap_is_still_parsed() {
        // Pad a valid request with trailing spaces up to exactly
        // MAX_LINE_BYTES: the reader must accept it (the cap is
        // inclusive) and the request must succeed.
        let request = request_line(5, 2);
        let mut input = request.clone();
        input.push_str(&" ".repeat(MAX_LINE_BYTES - request.len()));
        assert_eq!(input.len(), MAX_LINE_BYTES);
        input.push('\n');
        let (lines, summary) = run(&input, 1);
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn parallel_serve_preserves_input_order() {
        // Interleave expensive (n=40) and cheap (n=0) requests; with 4
        // workers the cheap ones finish first, and the writer must hold
        // them until their turn.
        let mut input = String::new();
        for id in 0..12u64 {
            input.push_str(&request_line(id, if id % 2 == 0 { 40 } else { 0 }));
            input.push('\n');
        }
        let (lines, summary) = run(&input, 4);
        assert_eq!(lines.len(), 12);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"id\":{i}")), "line {i}: {line}");
        }
        assert_eq!(summary.requests, 12);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn parallel_serve_matches_inline_serve() {
        let mut input = String::new();
        for id in 0..8u64 {
            input.push_str(&request_line(id, id % 3));
            input.push('\n');
        }
        let (serial, _) = run(&input, 1);
        let (parallel, _) = run(&input, 4);
        // Residuals are deterministic; only cache dispositions and wall
        // time may differ between the runs.
        let strip = |line: &str| -> String {
            let v = Json::parse(line).unwrap();
            let residual = v.get("residual").and_then(Json::as_str).unwrap().to_owned();
            let id = v.get("id").and_then(Json::as_u64).unwrap();
            format!("{id}:{residual}")
        };
        let serial: Vec<_> = serial.iter().map(|l| strip(l)).collect();
        let parallel: Vec<_> = parallel.iter().map(|l| strip(l)).collect();
        assert_eq!(serial, parallel);
    }
}
