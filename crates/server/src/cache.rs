//! The sharded, content-addressed residual cache with single-flight
//! deduplication and byte-budgeted LRU eviction.
//!
//! The paper's specializer already folds repeated specializations of the
//! same `(function, product of facet values)` *within* one run (the cache
//! `Sf` of Figure 3). This module is the same idea lifted one level: a
//! cache of whole residual programs keyed by the request content hash
//! ([`crate::key::residual_key`]), shared across requests, threads, and —
//! because keys hash spellings, not interner ids — across processes.
//!
//! Concurrency design, in order of acquisition:
//!
//! 1. Each key maps to one shard (high key bits); shards are independent
//!    `Mutex`es, so unrelated requests never contend.
//! 2. A shard lock is held only for map operations — never while a
//!    specialization runs.
//! 3. The first requester of an absent key registers an in-flight
//!    *flight* and computes outside the lock; concurrent requesters of
//!    the same key block on the flight's condvar and receive the leader's
//!    result (single-flight: N concurrent identical requests cost one
//!    specialization).
//!
//! Eviction is least-recently-used under a per-shard byte budget (total
//! budget ÷ shards); residuals larger than a whole shard's budget are
//! returned but never retained, and reported via
//! [`ppe_online::Budget::CacheBytes`] so callers can see the capacity
//! degradation in the response.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use ppe_online::{DegradationEvent, PeStats};

use crate::key::CacheKey;
use crate::metrics::Metrics;
use crate::request::CacheDisposition;

/// A completed specialization, as stored in (and served from) the cache.
#[derive(Clone, Debug)]
pub struct CachedOutcome {
    /// Pretty-printed residual program.
    pub residual: String,
    /// Engine counters from the run that produced it.
    pub stats: PeStats,
    /// Degradations from the run that produced it (replayed on hits: a
    /// hit on a degraded entry is still a degraded answer).
    pub degradations: Vec<DegradationEvent>,
    /// The entry function the residual specializes (spelling).
    pub entry: String,
    /// The entry's closure fingerprint at compute time — together with
    /// `entry` this lets `gc --stale-against` decide, entry by entry,
    /// whether a persisted residual is still reachable-identical in an
    /// edited program.
    pub closure_fingerprint: u64,
}

impl CachedOutcome {
    /// Approximate retained bytes: the dominant strings plus fixed
    /// per-entry bookkeeping overhead.
    fn cost(&self) -> usize {
        self.residual.len() + 64 * self.degradations.len() + 256
    }
}

/// What [`ResidualCache::get_or_compute`] observed.
#[derive(Debug)]
pub struct Fetched {
    /// The outcome (shared with the cache on hits), or the error the
    /// computation produced. Errors are not cached: under `Fail` policies
    /// they are cheap to reproduce, and not caching them keeps a
    /// transient condition (a deadline trip) from becoming sticky.
    pub outcome: Result<Arc<CachedOutcome>, String>,
    /// Hit, miss, or coalesced.
    pub disposition: CacheDisposition,
    /// Set when a computed outcome was too large to retain (its cost in
    /// bytes); the caller surfaces this as a `CacheBytes` degradation.
    pub rejected_bytes: Option<usize>,
}

struct Entry {
    outcome: Arc<CachedOutcome>,
    bytes: usize,
    last_used: u64,
}

enum FlightState {
    Pending,
    Done(Result<Arc<CachedOutcome>, String>),
}

struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

/// Completion guard for the single-flight leader. Every exit from the
/// leader's critical section — success, error, *or a panic unwinding
/// anywhere between flight registration and completion* — must (a) remove
/// the `in_flight` registration so a later request for the key computes
/// fresh instead of observing stale flight state, and (b) mark the flight
/// `Done` and wake waiters so nobody blocks forever. Routing both through
/// one structure makes that invariant hold by construction: the happy
/// path calls [`FlightCompletion::finish`], and `Drop` covers unwinds
/// (e.g. a poisoned shard lock panicking the post-compute insert).
struct FlightCompletion<'a> {
    shard: &'a Mutex<Shard>,
    key: u128,
    flight: &'a Arc<Flight>,
    finished: bool,
}

impl FlightCompletion<'_> {
    /// Publishes `outcome` to waiters and deregisters the flight.
    fn finish(&mut self, outcome: Result<Arc<CachedOutcome>, String>) {
        self.finished = true;
        self.complete(outcome);
    }

    fn complete(&self, outcome: Result<Arc<CachedOutcome>, String>) {
        // Poison-tolerant locking: this runs on panic paths, where the
        // ordinary `expect` would turn recovery into a double panic.
        let mut s = match self.shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        s.in_flight.remove(&self.key);
        drop(s);
        let mut state = match self.flight.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *state = FlightState::Done(outcome);
        drop(state);
        self.flight.done.notify_all();
    }
}

impl Drop for FlightCompletion<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.complete(Err(
                "specialization aborted: cache leader panicked before completing".to_owned(),
            ));
        }
    }
}

struct Shard {
    entries: HashMap<u128, Entry>,
    in_flight: HashMap<u128, Arc<Flight>>,
    bytes: usize,
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: u128) -> Option<Arc<CachedOutcome>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.outcome)
        })
    }

    /// Evicts least-recently-used entries until `need` bytes fit in
    /// `budget`. Linear scan per eviction: shards keep entry counts small
    /// enough (budget ÷ typical residual) that this stays cheap, and it
    /// needs no auxiliary order structure to keep consistent.
    fn make_room(&mut self, need: usize, budget: usize, metrics: &Metrics) {
        while self.bytes + need > budget && !self.entries.is_empty() {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map has a minimum");
            if let Some(e) = self.entries.remove(&oldest) {
                self.bytes -= e.bytes;
                metrics
                    .cache_evictions
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}

/// The sharded residual cache. See the module docs for the design.
pub struct ResidualCache {
    shards: Box<[Mutex<Shard>]>,
    shard_budget: usize,
}

impl std::fmt::Debug for ResidualCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualCache")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .finish()
    }
}

impl ResidualCache {
    /// A cache holding at most `total_bytes` across `shards` shards
    /// (rounded up to a power of two; at least one).
    pub fn new(total_bytes: usize, shards: usize) -> ResidualCache {
        let shards = shards.max(1).next_power_of_two();
        ResidualCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        in_flight: HashMap::new(),
                        bytes: 0,
                        clock: 0,
                    })
                })
                .collect(),
            shard_budget: total_bytes / shards,
        }
    }

    /// Number of retained entries (for tests and reports).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// True when no entry is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained bytes across shards (for tests and reports).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Looks `key` up; on a miss, runs `compute` exactly once across all
    /// concurrent callers of the same key and caches its success.
    ///
    /// A panicking `compute` is converted into an error result (and
    /// delivered to coalesced waiters) rather than poisoning the flight —
    /// a hung waiter would be a far worse failure than a lost answer.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        metrics: &Metrics,
        compute: impl FnOnce() -> Result<CachedOutcome, String>,
    ) -> Fetched {
        use std::sync::atomic::Ordering::Relaxed;
        let shard = &self.shards[key.shard(self.shards.len())];
        let flight: Arc<Flight>;
        {
            let mut s = shard.lock().expect("cache shard poisoned");
            if let Some(outcome) = s.touch(key.0) {
                metrics.cache_hits.fetch_add(1, Relaxed);
                return Fetched {
                    outcome: Ok(outcome),
                    disposition: CacheDisposition::Hit,
                    rejected_bytes: None,
                };
            }
            if let Some(existing) = s.in_flight.get(&key.0) {
                let existing = Arc::clone(existing);
                drop(s);
                metrics.dedup_coalesced.fetch_add(1, Relaxed);
                return Fetched {
                    outcome: wait(&existing),
                    disposition: CacheDisposition::Coalesced,
                    rejected_bytes: None,
                };
            }
            flight = Arc::new(Flight {
                state: Mutex::new(FlightState::Pending),
                done: Condvar::new(),
            });
            s.in_flight.insert(key.0, Arc::clone(&flight));
        }

        metrics.cache_misses.fetch_add(1, Relaxed);
        // From here until `finish`, any unwind must clean the flight up;
        // the guard's Drop handles it (see `FlightCompletion`).
        let mut completion = FlightCompletion {
            shard,
            key: key.0,
            flight: &flight,
            finished: false,
        };
        let computed = match catch_unwind(AssertUnwindSafe(compute)) {
            Ok(result) => result,
            Err(panic) => Err(format!(
                "specialization panicked: {}",
                panic_text(panic.as_ref())
            )),
        };

        let mut rejected_bytes = None;
        let outcome = match computed {
            Ok(outcome) => {
                let bytes = outcome.cost();
                let outcome = Arc::new(outcome);
                let mut s = shard.lock().expect("cache shard poisoned");
                if bytes <= self.shard_budget {
                    s.make_room(bytes, self.shard_budget, metrics);
                    s.clock += 1;
                    let last_used = s.clock;
                    s.bytes += bytes;
                    s.entries.insert(
                        key.0,
                        Entry {
                            outcome: Arc::clone(&outcome),
                            bytes,
                            last_used,
                        },
                    );
                } else {
                    metrics.cache_rejected.fetch_add(1, Relaxed);
                    rejected_bytes = Some(bytes);
                }
                drop(s);
                Ok(outcome)
            }
            Err(msg) => Err(msg),
        };

        completion.finish(outcome.clone());

        Fetched {
            outcome,
            disposition: CacheDisposition::Miss,
            rejected_bytes,
        }
    }
}

fn wait(flight: &Flight) -> Result<Arc<CachedOutcome>, String> {
    let mut state = flight.state.lock().expect("flight poisoned");
    loop {
        if let FlightState::Done(result) = &*state {
            return result.clone();
        }
        state = flight.done.wait(state).expect("flight poisoned");
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn outcome(text: &str) -> CachedOutcome {
        CachedOutcome {
            residual: text.to_owned(),
            stats: PeStats::default(),
            degradations: Vec::new(),
            entry: "main".to_owned(),
            closure_fingerprint: 0,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ResidualCache::new(1 << 20, 4);
        let metrics = Metrics::new();
        let key = CacheKey(42);
        let first = cache.get_or_compute(key, &metrics, || Ok(outcome("r")));
        assert_eq!(first.disposition, CacheDisposition::Miss);
        let again = cache.get_or_compute(key, &metrics, || panic!("must not recompute"));
        assert_eq!(again.disposition, CacheDisposition::Hit);
        assert_eq!(again.outcome.unwrap().residual, "r");
        assert_eq!(metrics.snapshot().cache_hits, 1);
        assert_eq!(metrics.snapshot().cache_misses, 1);
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let cache = ResidualCache::new(1 << 20, 1);
        let metrics = Metrics::new();
        let key = CacheKey(7);
        let r = cache.get_or_compute(key, &metrics, || Err("boom".to_owned()));
        assert_eq!(r.outcome.unwrap_err(), "boom");
        assert_eq!(cache.len(), 0);
        let r2 = cache.get_or_compute(key, &metrics, || Ok(outcome("ok")));
        assert_eq!(r2.disposition, CacheDisposition::Miss, "errors don't stick");
    }

    #[test]
    fn panicking_leader_leaves_no_stale_flight_state() {
        // Regression: after a leader panics — with waiters coalesced on
        // its flight — every waiter must receive an error (not hang on a
        // stale Pending flight), and a *later* request for the same key
        // must recompute cleanly and then cache normally.
        let cache = Arc::new(ResidualCache::new(1 << 20, 2));
        let metrics = Arc::new(Metrics::new());
        let key = CacheKey(1234);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                scope.spawn(move || {
                    let r = cache.get_or_compute(key, &metrics, || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("leader dies");
                    });
                    let msg = r.outcome.unwrap_err();
                    assert!(
                        msg.contains("leader dies") || msg.contains("panicked"),
                        "{msg}"
                    );
                });
            }
        });
        // No flight survives the panic: the next request is a fresh miss.
        let r = cache.get_or_compute(key, &metrics, || Ok(outcome("recovered")));
        assert_eq!(r.disposition, CacheDisposition::Miss, "clean recompute");
        assert_eq!(r.outcome.unwrap().residual, "recovered");
        let again = cache.get_or_compute(key, &metrics, || unreachable!());
        assert_eq!(again.disposition, CacheDisposition::Hit);
    }

    #[test]
    fn panics_become_errors() {
        let cache = ResidualCache::new(1 << 20, 1);
        let metrics = Metrics::new();
        let r = cache.get_or_compute(CacheKey(1), &metrics, || panic!("kaboom"));
        let msg = r.outcome.unwrap_err();
        assert!(msg.contains("kaboom"), "{msg}");
    }

    #[test]
    fn lru_evicts_under_byte_budget() {
        // One shard, budget fits roughly two small entries.
        let cache = ResidualCache::new(700, 1);
        let metrics = Metrics::new();
        cache.get_or_compute(CacheKey(1), &metrics, || Ok(outcome("a")));
        cache.get_or_compute(CacheKey(2), &metrics, || Ok(outcome("b")));
        assert_eq!(cache.len(), 2);
        // Touch 1 so 2 is the LRU victim.
        cache.get_or_compute(CacheKey(1), &metrics, || unreachable!());
        cache.get_or_compute(CacheKey(3), &metrics, || Ok(outcome("c")));
        assert_eq!(cache.len(), 2);
        assert_eq!(metrics.snapshot().cache_evictions, 1);
        assert_eq!(
            cache
                .get_or_compute(CacheKey(1), &metrics, || unreachable!())
                .disposition,
            CacheDisposition::Hit,
            "recently used survives"
        );
        assert_eq!(
            cache
                .get_or_compute(CacheKey(2), &metrics, || Ok(outcome("b")))
                .disposition,
            CacheDisposition::Miss,
            "LRU victim was evicted"
        );
    }

    #[test]
    fn oversized_outcomes_are_returned_but_not_retained() {
        let cache = ResidualCache::new(100, 1);
        let metrics = Metrics::new();
        let big = "x".repeat(10_000);
        let r = cache.get_or_compute(CacheKey(5), &metrics, || Ok(outcome(&big)));
        assert!(r.rejected_bytes.is_some());
        assert_eq!(r.outcome.unwrap().residual.len(), 10_000);
        assert_eq!(cache.len(), 0);
        assert_eq!(metrics.snapshot().cache_rejected, 1);
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_requests() {
        let cache = Arc::new(ResidualCache::new(1 << 20, 4));
        let metrics = Arc::new(Metrics::new());
        let computed = Arc::new(AtomicU64::new(0));
        let key = CacheKey(99);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let computed = Arc::clone(&computed);
                scope.spawn(move || {
                    let r = cache.get_or_compute(key, &metrics, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so followers actually
                        // coalesce instead of hitting the finished entry.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(outcome("shared"))
                    });
                    assert_eq!(r.outcome.unwrap().residual, "shared");
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
        let s = metrics.snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits + s.dedup_coalesced, 7);
    }
}
