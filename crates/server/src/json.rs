//! A minimal JSON value type, parser, and writer.
//!
//! The workspace builds with no registry access, so the serve loop's
//! JSON-lines protocol is implemented here rather than on serde: an
//! RFC 8259 subset sufficient for the request/response schema — objects,
//! arrays, strings (with `\uXXXX` escapes), numbers, booleans, null.
//! Numbers are kept as `f64`, which is exact for every integer the
//! protocol carries (budgets fit comfortably in 53 bits).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so that rendering is deterministic (keys in
/// sorted order) — responses are byte-stable for a given content, which
/// the determinism tests and scripted consumers rely on.
///
/// # Examples
///
/// ```
/// use ppe_server::json::Json;
///
/// let v = Json::parse(r#"{"a": [1, true, "x\n"]}"#).unwrap();
/// assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
/// assert_eq!(v.render(), "{\"a\":[1,true,\"x\\n\"]}");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders compactly (no spaces, object keys sorted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                use fmt::Write as _;
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field access; `None` for absent fields or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs (later duplicates win).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value from an integer counter.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.reserve(s.len() + 2);
    out.push('"');
    // Copy maximal clean runs with one `push_str` instead of pushing
    // char-by-char: every byte needing an escape is ASCII, so the run
    // boundaries always fall on char boundaries, and multi-byte UTF-8
    // rides along inside the runs untouched. On the serve hot path
    // (multi-KB residual texts in every response) this is the difference
    // between ~0.3 GB/s and memcpy-speed rendering.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'"' && b != b'\\' && b >= 0x20 {
            continue;
        }
        out.push_str(&s[start..i]);
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            _ => {
                let _ = write!(out, "\\u{:04x}", b);
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf-8");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the maximal run free of quotes, escapes, and control
            // bytes in one shot rather than char-by-char. The input came
            // from a `&str` and every byte that ends a run is ASCII, so
            // runs begin and end on UTF-8 boundaries; the `from_utf8` is
            // a (cheap, vectorized) re-check, not a decode.
            let start = self.pos;
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err("unterminated string".to_owned()),
                    Some(&b'"') | Some(&b'\\') => break,
                    Some(&b) if b < 0x20 => {
                        return Err("raw control character in string".to_owned())
                    }
                    Some(_) => self.pos += 1,
                }
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_owned())?;
                out.push_str(run);
            }
            let b = self.bytes[self.pos];
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_owned());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad \\u escape".to_owned())?,
                            );
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", char::from(other)));
                        }
                    }
                }
                // The run scan stops only on `"`, `\`, or a control byte,
                // and control bytes error out inside it.
                _ => unreachable!("run scan stops on quote or backslash"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_owned())?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_owned())?;
        let n = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_owned())?;
        self.pos += 4;
        Ok(n)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"xs": [1, {"y": null}], "z": "ok"}"#).unwrap();
        assert_eq!(v.get("z").unwrap().as_str(), Some("ok"));
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].get("y"), Some(&Json::Null));
    }

    #[test]
    fn render_roundtrips() {
        let src = r#"{"a":[1,true,"x\n"],"b":{"c":-2}}"#;
        let v = Json::parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "nan"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_rendering_is_key_sorted() {
        let v = Json::obj(vec![("b", Json::num(2)), ("a", Json::num(1))]);
        assert_eq!(v.render(), r#"{"a":1,"b":2}"#);
    }
}
