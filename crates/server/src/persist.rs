//! The disk persistence tier: a crash-safe, content-addressed store of
//! finished residuals underneath the in-memory LRU.
//!
//! The in-memory [`crate::cache::ResidualCache`] dies with the process,
//! so every restart of `ppe serve`/`ppe batch` pays full cold-start even
//! though the cache keys ([`crate::key`]) are stable across processes.
//! This module keeps one file per key in a cache directory, and it is
//! engineered for hostile failure modes rather than the happy path:
//!
//! - **Versioned format with per-entry integrity.** Every entry starts
//!   with a fixed header — magic, format version, the entry's own key, the
//!   payload length, and a 128-bit FNV-1a checksum of the payload — so a
//!   reader can tell a good entry from a truncated, bit-flipped, torn,
//!   foreign, misnamed, or wrong-version file *before* trusting a byte of
//!   it. The key in the header makes entries self-identifying: a file
//!   renamed onto the wrong key is detected even when its checksum is
//!   intact.
//! - **Atomic writes.** A store writes the full entry to a temporary file
//!   in the same directory, fsyncs it, renames it over the final name, and
//!   fsyncs the directory. A crash at any point leaves either the old
//!   state or the new state — never a readable-but-wrong entry. Leftover
//!   `.tmp-*` files from a crash mid-write are invisible to readers and
//!   swept by [`PersistTier::gc`].
//! - **Corruption-safe load.** A bad entry is never an error for the
//!   request that found it: the entry is quarantined (moved aside into
//!   `quarantine/`, preserving the evidence), the event is counted per
//!   fault kind, and the caller falls through to the cold compute path.
//!   The per-kind counts are reported [`DegradationReport`]-style by
//!   [`PersistTier::fault_report`].
//! - **Degraded-disk modes.** [`PersistMode::ReadOnly`] serves hits from a
//!   disk that must not (or cannot) be written; a missing tier (config
//!   `None`) disables persistence entirely.
//!
//! Caching residuals on disk is sound for exactly the reason the
//! in-memory cache is sound (DESIGN.md §10, Definitions 5–7): the key
//! hashes everything the residual depends on, and hashes spellings, never
//! process-local identities. The on-disk format is specified normatively
//! in DESIGN.md §15; [`FORMAT_VERSION`] must be bumped whenever the header
//! layout, the payload schema, *or the key scheme* changes (a silent key
//! change would orphan every persisted entry — the golden key-snapshot
//! test pins this).
//!
//! [`DegradationReport`]: ppe_online::DegradationReport

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufRead, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use ppe_lang::Symbol;
use ppe_online::{DegradationEvent, PeStats};

use crate::cache::CachedOutcome;
use crate::json::Json;
use crate::key::{CacheKey, KeyHasher};
use crate::metrics::Metrics;
use crate::request::{degradation_json, stats_json};

/// Magic bytes opening every entry file.
pub const MAGIC: [u8; 8] = *b"PPECACHE";

/// The on-disk format version. Bump this whenever the header layout, the
/// payload schema, or the cache-key scheme changes; readers refuse (and
/// quarantine) any other version rather than guessing.
///
/// v2: cache keys switched from whole-program fingerprints to
/// per-entry closure fingerprints (`ppe-residual-v2`), and the payload
/// gained `entry` + `closure_fp` so `gc --stale-against` can validate
/// entries against an edited program. v1 entries are quarantined as
/// `WrongVersion` rather than mis-hit under the new keying.
pub const FORMAT_VERSION: u32 = 2;

/// Header size: magic (8) + version (4) + key (16) + payload length (8) +
/// payload checksum (16).
const HEADER_BYTES: usize = 8 + 4 + 16 + 8 + 16;

/// Domain-separation tag for the payload checksum.
const CHECKSUM_TAG: &str = "ppe-disk-entry-v1";

/// Subdirectory corrupt entries are moved into.
const QUARANTINE_DIR: &str = "quarantine";

/// File suffix for committed entries.
const ENTRY_SUFFIX: &str = ".ppe";

/// Default per-entry size cap (header excluded). Entries above it are
/// never written, and a file *claiming* a larger payload is corrupt by
/// definition — the cap bounds how much memory a hostile file can make
/// the loader allocate.
pub const DEFAULT_MAX_ENTRY_BYTES: usize = 16 << 20;

/// How the tier may touch the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistMode {
    /// Load, store, quarantine, gc: the normal mode.
    ReadWrite,
    /// Load only — for disks that are degraded, shared, or sealed.
    /// Corrupt entries are counted but left in place (quarantining would
    /// be a write).
    ReadOnly,
}

/// Configuration for one persistence tier.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// The cache directory (created, along with `quarantine/`, in
    /// read-write mode).
    pub dir: PathBuf,
    /// Read-write or read-only.
    pub mode: PersistMode,
    /// Per-entry payload cap in bytes; see [`DEFAULT_MAX_ENTRY_BYTES`].
    pub max_entry_bytes: usize,
}

impl PersistConfig {
    /// A read-write tier at `dir` with the default entry cap.
    pub fn new(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            mode: PersistMode::ReadWrite,
            max_entry_bytes: DEFAULT_MAX_ENTRY_BYTES,
        }
    }
}

/// Why a load rejected an entry file. Every variant is a *fault*: the
/// file exists but cannot be trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Shorter than the header, or shorter than the declared payload.
    Truncated = 0,
    /// The magic bytes are not [`MAGIC`] — not one of our files.
    BadMagic = 1,
    /// A format version this reader does not speak.
    WrongVersion = 2,
    /// Longer than header + declared payload: a torn or overwritten tail.
    LengthMismatch = 3,
    /// The declared payload exceeds the configured per-entry cap.
    Oversized = 4,
    /// The payload checksum does not match: bit rot or a torn write.
    ChecksumMismatch = 5,
    /// The header's key is not the key the file is named for.
    KeyMismatch = 6,
    /// The payload passed the checksum but is not a valid entry encoding
    /// (possible only across a buggy writer — integrity ≠ validity).
    BadPayload = 7,
    /// The file could not be read at all (I/O error other than absence).
    Io = 8,
}

/// Number of [`FaultKind`] variants (sizing the per-kind counters).
const FAULT_KINDS: usize = 9;

impl FaultKind {
    /// A short, stable name (used in reports and quarantine file names).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Truncated => "truncated",
            FaultKind::BadMagic => "bad-magic",
            FaultKind::WrongVersion => "wrong-version",
            FaultKind::LengthMismatch => "length-mismatch",
            FaultKind::Oversized => "oversized",
            FaultKind::ChecksumMismatch => "checksum-mismatch",
            FaultKind::KeyMismatch => "key-mismatch",
            FaultKind::BadPayload => "bad-payload",
            FaultKind::Io => "io-error",
        }
    }

    fn all() -> [FaultKind; FAULT_KINDS] {
        [
            FaultKind::Truncated,
            FaultKind::BadMagic,
            FaultKind::WrongVersion,
            FaultKind::LengthMismatch,
            FaultKind::Oversized,
            FaultKind::ChecksumMismatch,
            FaultKind::KeyMismatch,
            FaultKind::BadPayload,
            FaultKind::Io,
        ]
    }
}

/// A point-in-time, per-kind count of the faults this tier has seen —
/// the `DegradationReport` of the disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    counts: [u64; FAULT_KINDS],
}

impl FaultReport {
    /// Total faults across kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no fault has been observed.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The count for one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Renders the non-zero kinds as one JSON object (deterministic:
    /// keys sorted by the underlying map).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            FaultKind::all()
                .iter()
                .filter(|k| self.count(**k) > 0)
                .map(|k| (k.name().to_owned(), Json::num(self.count(*k))))
                .collect(),
        )
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no disk faults");
        }
        let mut first = true;
        for kind in FaultKind::all() {
            let n = self.count(kind);
            if n == 0 {
                continue;
            }
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{} ×{n}", kind.name())?;
        }
        Ok(())
    }
}

/// What the cache directory holds right now (from a directory walk).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Committed entry files.
    pub entries: u64,
    /// Total bytes of committed entries (headers included).
    pub entry_bytes: u64,
    /// Files in `quarantine/`.
    pub quarantined: u64,
    /// Total bytes in `quarantine/`.
    pub quarantined_bytes: u64,
    /// Leftover temporary files (crashed mid-write; swept by gc).
    pub tmp_files: u64,
}

impl DiskStats {
    /// Renders the stats as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("entries", Json::num(self.entries)),
            ("entry_bytes", Json::num(self.entry_bytes)),
            ("format_version", Json::num(u64::from(FORMAT_VERSION))),
            ("quarantined", Json::num(self.quarantined)),
            ("quarantined_bytes", Json::num(self.quarantined_bytes)),
            ("tmp_files", Json::num(self.tmp_files)),
        ])
    }
}

/// What one [`PersistTier::gc`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries kept (newest first, under the byte budget).
    pub kept_entries: u64,
    /// Bytes kept.
    pub kept_bytes: u64,
    /// Entries removed.
    pub removed_entries: u64,
    /// Bytes removed.
    pub removed_bytes: u64,
    /// Leftover temporary files swept.
    pub removed_tmp: u64,
    /// Quarantined files purged (only with `purge_quarantine`).
    pub purged_quarantine: u64,
}

/// What one [`PersistTier::gc_stale`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaleGcReport {
    /// Entries whose `(entry, closure fingerprint)` still matches the
    /// reference program — kept.
    pub kept_entries: u64,
    /// Entries invalidated by the reference program (entry removed, or
    /// its reachable closure edited) — removed.
    pub removed_entries: u64,
    /// Bytes removed.
    pub removed_bytes: u64,
    /// Unreadable or corrupt entries skipped (left in place for the
    /// load path to quarantine; stale-gc never destroys evidence).
    pub skipped_corrupt: u64,
    /// Quarantined files purged (only with `purge_quarantine`).
    pub purged_quarantine: u64,
}

impl StaleGcReport {
    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kept_entries", Json::num(self.kept_entries)),
            ("removed_entries", Json::num(self.removed_entries)),
            ("removed_bytes", Json::num(self.removed_bytes)),
            ("skipped_corrupt", Json::num(self.skipped_corrupt)),
            ("purged_quarantine", Json::num(self.purged_quarantine)),
        ])
    }
}

/// What one [`PersistTier::export`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExportReport {
    /// Entries written to the export stream.
    pub exported: u64,
    /// Corrupt entries skipped (and counted in the fault report).
    pub skipped: u64,
}

/// What one [`PersistTier::import`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Entries validated and committed.
    pub imported: u64,
    /// Lines rejected (malformed, wrong format version, invalid payload).
    pub rejected: u64,
}

/// The disk tier. One instance per cache directory; shared by reference
/// across workers (all state is atomics and the filesystem).
#[derive(Debug)]
pub struct PersistTier {
    dir: PathBuf,
    mode: PersistMode,
    max_entry_bytes: usize,
    faults: [AtomicU64; FAULT_KINDS],
    tmp_counter: AtomicU64,
}

impl PersistTier {
    /// Opens (and in read-write mode, creates) the cache directory.
    ///
    /// # Errors
    ///
    /// A human-readable message when the directory cannot be created or is
    /// not usable in the requested mode.
    pub fn open(config: PersistConfig) -> Result<PersistTier, String> {
        let dir = config.dir;
        match config.mode {
            PersistMode::ReadWrite => {
                fs::create_dir_all(dir.join(QUARANTINE_DIR))
                    .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
            }
            PersistMode::ReadOnly => {
                if !dir.is_dir() {
                    return Err(format!(
                        "cache dir `{}` does not exist (read-only mode creates nothing)",
                        dir.display()
                    ));
                }
            }
        }
        Ok(PersistTier {
            dir,
            mode: config.mode,
            max_entry_bytes: config.max_entry_bytes,
            faults: Default::default(),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True in read-only mode.
    pub fn read_only(&self) -> bool {
        self.mode == PersistMode::ReadOnly
    }

    /// The faults observed by this tier instance so far.
    pub fn fault_report(&self) -> FaultReport {
        let mut counts = [0u64; FAULT_KINDS];
        for (slot, counter) in counts.iter_mut().zip(&self.faults) {
            *slot = counter.load(Relaxed);
        }
        FaultReport { counts }
    }

    fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{key}{ENTRY_SUFFIX}"))
    }

    /// Loads the entry for `key`, if present and intact. A corrupt entry
    /// is quarantined and counted; the caller sees a plain miss and falls
    /// through to the compute path — corruption never fails a request.
    pub fn load(&self, key: CacheKey, metrics: &Metrics) -> Option<CachedOutcome> {
        let path = self.entry_path(key);
        let bytes = match self.read_entry_bytes(&path) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => {
                metrics.disk_misses.fetch_add(1, Relaxed);
                return None;
            }
            Err(kind) => {
                self.reject(&path, kind, metrics);
                return None;
            }
        };
        match decode_entry(&bytes, key, self.max_entry_bytes) {
            Ok(outcome) => {
                metrics.disk_hits.fetch_add(1, Relaxed);
                Some(outcome)
            }
            Err(kind) => {
                self.reject(&path, kind, metrics);
                None
            }
        }
    }

    /// Reads an entry file fully, refusing to allocate for a file that is
    /// larger than any valid entry could be. `Ok(None)` means absent.
    fn read_entry_bytes(&self, path: &Path) -> Result<Option<Vec<u8>>, FaultKind> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(_) => return Err(FaultKind::Io),
        };
        let cap = HEADER_BYTES as u64 + self.max_entry_bytes as u64;
        if let Ok(meta) = file.metadata() {
            if meta.len() > cap {
                return Err(FaultKind::Oversized);
            }
        }
        let mut bytes = Vec::new();
        // `take` re-checks the cap during the read: the metadata check is
        // advisory (the file can grow between stat and read).
        match (&mut file as &mut dyn Read)
            .take(cap + 1)
            .read_to_end(&mut bytes)
        {
            Ok(_) if bytes.len() as u64 > cap => Err(FaultKind::Oversized),
            Ok(_) => Ok(Some(bytes)),
            Err(_) => Err(FaultKind::Io),
        }
    }

    /// Counts a fault and, in read-write mode, moves the file into
    /// `quarantine/` so the next request does not trip over it again and
    /// the evidence survives for inspection.
    fn reject(&self, path: &Path, kind: FaultKind, metrics: &Metrics) {
        self.faults[kind as usize].fetch_add(1, Relaxed);
        metrics.disk_corrupt.fetch_add(1, Relaxed);
        if self.read_only() {
            return;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_owned());
        let target = self
            .dir
            .join(QUARANTINE_DIR)
            .join(format!("{name}.{}", kind.name()));
        if fs::rename(path, &target).is_ok() {
            metrics.disk_quarantined.fetch_add(1, Relaxed);
        } else {
            // Rename can fail on a degraded disk; removing is the lesser
            // fallback (keeps the entry from being re-read every request).
            let _ = fs::remove_file(path);
        }
    }

    /// Stores `outcome` under `key` with the atomic write protocol:
    /// temp file in the same directory → fsync → rename → directory fsync.
    /// Failures are counted, never surfaced — persistence is an
    /// optimization, and a full or read-only disk must not fail requests.
    pub fn store(&self, key: CacheKey, outcome: &CachedOutcome, metrics: &Metrics) {
        if self.read_only() {
            return;
        }
        let payload = encode_payload(outcome);
        if payload.len() > self.max_entry_bytes {
            metrics.disk_store_errors.fetch_add(1, Relaxed);
            return;
        }
        let bytes = encode_entry(key, payload.as_bytes());
        let tmp = self.dir.join(format!(
            "{key}.tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Relaxed)
        ));
        if self.commit(&tmp, &self.entry_path(key), &bytes).is_ok() {
            metrics.disk_stores.fetch_add(1, Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
            metrics.disk_store_errors.fetch_add(1, Relaxed);
        }
    }

    fn commit(&self, tmp: &Path, target: &Path, bytes: &[u8]) -> io::Result<()> {
        {
            let mut file = File::create(tmp)?;
            file.write_all(bytes)?;
            // Data must be durable before the rename publishes the name:
            // rename-before-fsync is exactly the torn-write window this
            // tier exists to close.
            file.sync_all()?;
        }
        fs::rename(tmp, target)?;
        // Make the rename itself durable. A failure here is not fatal for
        // correctness (the entry is valid either way; at worst the name
        // vanishes on crash), so it is best-effort.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// Walks the directory and reports what it holds.
    ///
    /// # Errors
    ///
    /// I/O errors reading the directory itself.
    pub fn stats(&self) -> io::Result<DiskStats> {
        let mut stats = DiskStats::default();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Ok(meta) = entry.metadata() else { continue };
            if meta.is_dir() {
                continue;
            }
            if name.ends_with(ENTRY_SUFFIX) {
                stats.entries += 1;
                stats.entry_bytes += meta.len();
            } else if name.contains(".tmp-") {
                stats.tmp_files += 1;
            }
        }
        let quarantine = self.dir.join(QUARANTINE_DIR);
        if let Ok(entries) = fs::read_dir(&quarantine) {
            for entry in entries.flatten() {
                if let Ok(meta) = entry.metadata() {
                    if meta.is_file() {
                        stats.quarantined += 1;
                        stats.quarantined_bytes += meta.len();
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Shrinks the directory to at most `keep_bytes` of entries (newest
    /// first by modification time), sweeps leftover temp files, and —
    /// with `purge_quarantine` — empties `quarantine/`.
    ///
    /// # Errors
    ///
    /// Read-only tiers refuse; I/O errors reading the directory surface.
    pub fn gc(&self, keep_bytes: u64, purge_quarantine: bool) -> io::Result<GcReport> {
        if self.read_only() {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "cannot gc a read-only cache dir",
            ));
        }
        let mut report = GcReport::default();
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            if name.contains(".tmp-") {
                if fs::remove_file(entry.path()).is_ok() {
                    report.removed_tmp += 1;
                }
            } else if name.ends_with(ENTRY_SUFFIX) {
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                entries.push((entry.path(), meta.len(), mtime));
            }
        }
        // Newest first; evict from the old end once the budget is spent.
        entries.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        let mut kept = 0u64;
        for (path, len, _) in entries {
            if kept + len <= keep_bytes {
                kept += len;
                report.kept_entries += 1;
                report.kept_bytes += len;
            } else if fs::remove_file(&path).is_ok() {
                report.removed_entries += 1;
                report.removed_bytes += len;
            }
        }
        if purge_quarantine {
            if let Ok(entries) = fs::read_dir(self.dir.join(QUARANTINE_DIR)) {
                for entry in entries.flatten() {
                    if entry.metadata().map(|m| m.is_file()).unwrap_or(false)
                        && fs::remove_file(entry.path()).is_ok()
                    {
                        report.purged_quarantine += 1;
                    }
                }
            }
        }
        Ok(report)
    }

    /// Drops exactly the entries `reference` invalidates: an entry is
    /// kept iff its recorded entry function is still defined in the
    /// reference program *and* its recorded closure fingerprint equals
    /// that function's current closure fingerprint. Everything else —
    /// entries for removed functions, entries whose reachable closure
    /// was edited, and entries computed for other programs — is removed.
    /// (The reference program defines what "still valid" means; a cache
    /// directory shared across unrelated programs should be collected
    /// with the byte-budget [`PersistTier::gc`] instead.)
    ///
    /// Unreadable or corrupt entries are skipped and counted, not
    /// removed: the load path owns corruption handling (quarantine), and
    /// stale-gc should never destroy the evidence it would file.
    ///
    /// # Errors
    ///
    /// Read-only tiers refuse; I/O errors reading the directory surface.
    pub fn gc_stale(
        &self,
        reference: &ppe_analyze::depgraph::DepGraph,
        purge_quarantine: bool,
    ) -> io::Result<StaleGcReport> {
        if self.read_only() {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "cannot gc a read-only cache dir",
            ));
        }
        let mut report = StaleGcReport::default();
        let mut keys: Vec<CacheKey> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(hex) = name.strip_suffix(ENTRY_SUFFIX) {
                if let Ok(raw) = u128::from_str_radix(hex, 16) {
                    keys.push(CacheKey(raw));
                }
            }
        }
        keys.sort();
        for key in keys {
            let path = self.entry_path(key);
            let decoded = self
                .read_entry_bytes(&path)
                .ok()
                .flatten()
                .and_then(|bytes| decode_entry(&bytes, key, self.max_entry_bytes).ok());
            let Some(outcome) = decoded else {
                report.skipped_corrupt += 1;
                continue;
            };
            let current = reference.closure_fingerprint(Symbol::intern(&outcome.entry));
            if current == Some(outcome.closure_fingerprint) {
                report.kept_entries += 1;
            } else {
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if fs::remove_file(&path).is_ok() {
                    report.removed_entries += 1;
                    report.removed_bytes += len;
                }
            }
        }
        if purge_quarantine {
            if let Ok(entries) = fs::read_dir(self.dir.join(QUARANTINE_DIR)) {
                for entry in entries.flatten() {
                    if entry.metadata().map(|m| m.is_file()).unwrap_or(false)
                        && fs::remove_file(entry.path()).is_ok()
                    {
                        report.purged_quarantine += 1;
                    }
                }
            }
        }
        Ok(report)
    }

    /// Writes every intact entry as one JSON line (`{"key": …, "entry":
    /// …}`) after a header line carrying the format version. Corrupt
    /// entries are skipped and counted, exactly as a load would treat
    /// them. Output order is deterministic (sorted by key).
    ///
    /// # Errors
    ///
    /// I/O errors on the output stream or the directory walk.
    pub fn export(&self, out: &mut dyn Write) -> io::Result<ExportReport> {
        let mut report = ExportReport::default();
        let mut keys: Vec<CacheKey> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(hex) = name.strip_suffix(ENTRY_SUFFIX) {
                if let Ok(raw) = u128::from_str_radix(hex, 16) {
                    keys.push(CacheKey(raw));
                }
            }
        }
        keys.sort();
        writeln!(
            out,
            "{}",
            Json::obj(vec![
                ("format_version", Json::num(u64::from(FORMAT_VERSION))),
                ("kind", Json::str("ppe-cache-export")),
            ])
            .render()
        )?;
        for key in keys {
            let path = self.entry_path(key);
            let loaded = self
                .read_entry_bytes(&path)
                .ok()
                .flatten()
                .and_then(|bytes| payload_json(&bytes, key, self.max_entry_bytes));
            match loaded {
                Some(payload) => {
                    let line = Json::obj(vec![
                        ("entry", payload),
                        ("key", Json::str(key.to_string())),
                    ]);
                    writeln!(out, "{}", line.render())?;
                    report.exported += 1;
                }
                None => {
                    self.faults[FaultKind::BadPayload as usize].fetch_add(1, Relaxed);
                    report.skipped += 1;
                }
            }
        }
        Ok(report)
    }

    /// Reads an export stream, validating every line, and commits each
    /// entry with the atomic write protocol. A bad line is rejected and
    /// counted; it never aborts the rest of the stream.
    ///
    /// # Errors
    ///
    /// Read-only tiers refuse; a missing or wrong-version export header
    /// rejects the whole stream; I/O errors on the input surface.
    pub fn import(&self, input: &mut dyn BufRead) -> io::Result<ImportReport> {
        if self.read_only() {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "cannot import into a read-only cache dir",
            ));
        }
        let mut report = ImportReport::default();
        let mut header_seen = false;
        let metrics = Metrics::new(); // local counters; callers read the report
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = Json::parse(&line) else {
                report.rejected += 1;
                continue;
            };
            if !header_seen {
                header_seen = true;
                let version = v.get("format_version").and_then(Json::as_u64);
                let kind = v.get("kind").and_then(Json::as_str);
                if kind != Some("ppe-cache-export") || version != Some(u64::from(FORMAT_VERSION)) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "not a ppe cache export for format version {FORMAT_VERSION}: {line}"
                        ),
                    ));
                }
                continue;
            }
            let parsed = v
                .get("key")
                .and_then(Json::as_str)
                .and_then(|hex| u128::from_str_radix(hex, 16).ok())
                .map(CacheKey)
                .zip(v.get("entry").map(|e| e.render()));
            let Some((key, payload)) = parsed else {
                report.rejected += 1;
                continue;
            };
            // Re-validate through the same decoder a load would use: an
            // import must never plant an entry a load would quarantine.
            let bytes = encode_entry(key, payload.as_bytes());
            if decode_entry(&bytes, key, self.max_entry_bytes).is_err() {
                report.rejected += 1;
                continue;
            }
            let stores_before = metrics.disk_stores.load(Relaxed);
            let outcome =
                decode_entry(&bytes, key, self.max_entry_bytes).expect("validated one line above");
            self.store(key, &outcome, &metrics);
            if metrics.disk_stores.load(Relaxed) > stores_before {
                report.imported += 1;
            } else {
                report.rejected += 1;
            }
        }
        if !header_seen {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "empty import stream (missing export header)",
            ));
        }
        Ok(report)
    }
}

/// Serializes one entry file: header + JSON payload.
fn encode_entry(key: CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&key.0.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&checksum(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Validates an entry file against `expected` and decodes its payload.
fn decode_entry(
    bytes: &[u8],
    expected: CacheKey,
    max_entry_bytes: usize,
) -> Result<CachedOutcome, FaultKind> {
    let payload = verify_entry(bytes, expected, max_entry_bytes)?;
    let text = std::str::from_utf8(payload).map_err(|_| FaultKind::BadPayload)?;
    decode_payload(text).ok_or(FaultKind::BadPayload)
}

/// The header checks shared by load and export, returning the verified
/// payload slice.
fn verify_entry(
    bytes: &[u8],
    expected: CacheKey,
    max_entry_bytes: usize,
) -> Result<&[u8], FaultKind> {
    if bytes.len() < HEADER_BYTES {
        return Err(FaultKind::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(FaultKind::BadMagic);
    }
    let field = |start: usize, len: usize| &bytes[start..start + len];
    let version = u32::from_le_bytes(field(8, 4).try_into().expect("fixed width"));
    if version != FORMAT_VERSION {
        return Err(FaultKind::WrongVersion);
    }
    let key = u128::from_le_bytes(field(12, 16).try_into().expect("fixed width"));
    if key != expected.0 {
        return Err(FaultKind::KeyMismatch);
    }
    let declared = u64::from_le_bytes(field(28, 8).try_into().expect("fixed width"));
    if declared > max_entry_bytes as u64 {
        return Err(FaultKind::Oversized);
    }
    let declared = declared as usize;
    let actual = bytes.len() - HEADER_BYTES;
    if actual < declared {
        return Err(FaultKind::Truncated);
    }
    if actual > declared {
        return Err(FaultKind::LengthMismatch);
    }
    let stored = u128::from_le_bytes(field(36, 16).try_into().expect("fixed width"));
    let payload = &bytes[HEADER_BYTES..];
    if checksum(payload) != stored {
        return Err(FaultKind::ChecksumMismatch);
    }
    Ok(payload)
}

/// Extracts the payload of an intact entry as parsed JSON (for export).
fn payload_json(bytes: &[u8], expected: CacheKey, max_entry_bytes: usize) -> Option<Json> {
    let payload = verify_entry(bytes, expected, max_entry_bytes).ok()?;
    let text = std::str::from_utf8(payload).ok()?;
    // Decode fully, not just parse: an exported line must round-trip.
    decode_payload(text)?;
    Json::parse(text).ok()
}

/// 128-bit FNV-1a over the payload, domain-separated from the key hashes.
fn checksum(payload: &[u8]) -> u128 {
    let mut h = KeyHasher::new(CHECKSUM_TAG);
    h.write_bytes(payload);
    h.finish().0
}

/// Renders a [`CachedOutcome`] as the canonical JSON payload.
pub(crate) fn encode_payload(outcome: &CachedOutcome) -> String {
    Json::obj(vec![
        (
            "closure_fp",
            Json::str(format!("{:016x}", outcome.closure_fingerprint)),
        ),
        (
            "degradations",
            Json::Arr(outcome.degradations.iter().map(degradation_json).collect()),
        ),
        ("entry", Json::str(outcome.entry.clone())),
        ("residual", Json::str(outcome.residual.clone())),
        ("stats", stats_json(&outcome.stats)),
    ])
    .render()
}

/// Parses the canonical JSON payload back into a [`CachedOutcome`].
/// `None` on any missing or ill-typed field.
pub(crate) fn decode_payload(text: &str) -> Option<CachedOutcome> {
    let v = Json::parse(text).ok()?;
    let residual = v.get("residual")?.as_str()?.to_owned();
    let entry = v.get("entry")?.as_str()?.to_owned();
    let closure_fingerprint = {
        let hex = v.get("closure_fp")?.as_str()?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok()?
    };
    let s = v.get("stats")?;
    let num = |field: &str| s.get(field).and_then(Json::as_u64);
    let stats = PeStats {
        reductions: num("reductions")?,
        residual_prims: num("residual_prims")?,
        static_branches: num("static_branches")?,
        dynamic_branches: num("dynamic_branches")?,
        unfolds: num("unfolds")?,
        specializations: num("specializations")?,
        cache_hits: num("cache_hits")?,
        steps: num("steps")?,
    };
    let mut degradations = Vec::new();
    for d in v.get("degradations")?.as_array()? {
        degradations.push(DegradationEvent {
            budget: budget_from_name(d.get("budget")?.as_str()?)?,
            function: match d.get("function") {
                Some(f) => Some(Symbol::intern(f.as_str()?)),
                None => None,
            },
            depth: u32::try_from(d.get("depth")?.as_u64()?).ok()?,
            count: d.get("count")?.as_u64()?,
        });
    }
    Some(CachedOutcome {
        residual,
        stats,
        degradations,
        entry,
        closure_fingerprint,
    })
}

/// Inverse of [`ppe_online::Budget`]'s `Display` names (the wire and disk
/// spelling of a budget).
fn budget_from_name(name: &str) -> Option<ppe_online::Budget> {
    use ppe_online::Budget;
    Some(match name {
        "fuel" => Budget::Fuel,
        "deadline" => Budget::Deadline,
        "unfold depth" => Budget::UnfoldDepth,
        "specialization cache" => Budget::SpecializationCache,
        "residual size" => Budget::ResidualSize,
        "recursion depth" => Budget::RecursionDepth,
        "cache bytes" => Budget::CacheBytes,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_online::Budget;
    use std::sync::atomic::AtomicU64;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A fresh scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Scratch {
            let dir = std::env::temp_dir().join(format!(
                "ppe-persist-unit-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn outcome() -> CachedOutcome {
        CachedOutcome {
            residual: "(define (f x) (+ x 1))".to_owned(),
            stats: PeStats {
                reductions: 3,
                unfolds: 2,
                ..PeStats::default()
            },
            degradations: vec![DegradationEvent {
                budget: Budget::Fuel,
                function: Some(Symbol::intern("f")),
                depth: 4,
                count: 2,
            }],
            entry: "f".to_owned(),
            closure_fingerprint: 0x1234_5678_9abc_def0,
        }
    }

    #[test]
    fn payload_roundtrips() {
        let original = outcome();
        let decoded = decode_payload(&encode_payload(&original)).unwrap();
        assert_eq!(decoded.residual, original.residual);
        assert_eq!(decoded.stats, original.stats);
        assert_eq!(decoded.degradations, original.degradations);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let scratch = Scratch::new();
        let tier = PersistTier::open(PersistConfig::new(&scratch.0)).unwrap();
        let metrics = Metrics::new();
        let key = CacheKey(0xfeed_beef);
        assert!(tier.load(key, &metrics).is_none(), "empty dir misses");
        tier.store(key, &outcome(), &metrics);
        let loaded = tier.load(key, &metrics).expect("stored entry loads");
        assert_eq!(loaded.residual, outcome().residual);
        let s = metrics.snapshot();
        assert_eq!((s.disk_misses, s.disk_stores, s.disk_hits), (1, 1, 1));
        assert!(tier.fault_report().is_empty());
    }

    #[test]
    fn every_header_violation_is_detected() {
        let key = CacheKey(7);
        let payload = encode_payload(&outcome());
        let good = encode_entry(key, payload.as_bytes());
        assert!(decode_entry(&good, key, 1 << 20).is_ok());

        let check = |bytes: Vec<u8>, expect: FaultKind| {
            assert_eq!(decode_entry(&bytes, key, 1 << 20).unwrap_err(), expect);
        };
        check(good[..10].to_vec(), FaultKind::Truncated);
        check(good[..good.len() - 3].to_vec(), FaultKind::Truncated);
        let mut torn = good.clone();
        torn.extend_from_slice(b"trailing");
        check(torn, FaultKind::LengthMismatch);
        let mut magic = good.clone();
        magic[0] ^= 0xff;
        check(magic, FaultKind::BadMagic);
        let mut version = good.clone();
        version[8] = 99;
        check(version, FaultKind::WrongVersion);
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        check(flipped, FaultKind::ChecksumMismatch);
        check(
            encode_entry(CacheKey(8), payload.as_bytes()),
            FaultKind::KeyMismatch,
        );
        assert_eq!(
            decode_entry(&good, key, 8).unwrap_err(),
            FaultKind::Oversized,
            "a tiny cap rejects the declared length"
        );
        // Valid frame around an invalid payload.
        check(encode_entry(key, b"not json"), FaultKind::BadPayload);
        check(
            encode_entry(key, br#"{"residual": 5}"#),
            FaultKind::BadPayload,
        );
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_recovered_from() {
        let scratch = Scratch::new();
        let tier = PersistTier::open(PersistConfig::new(&scratch.0)).unwrap();
        let metrics = Metrics::new();
        let key = CacheKey(42);
        tier.store(key, &outcome(), &metrics);
        // Flip one payload bit on disk.
        let path = tier.entry_path(key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        assert!(tier.load(key, &metrics).is_none(), "corrupt entry misses");
        assert!(!path.exists(), "corrupt entry was moved aside");
        let s = metrics.snapshot();
        assert_eq!((s.disk_corrupt, s.disk_quarantined), (1, 1));
        assert_eq!(tier.fault_report().count(FaultKind::ChecksumMismatch), 1);
        assert_eq!(tier.stats().unwrap().quarantined, 1);
        // The slot is reusable immediately.
        tier.store(key, &outcome(), &metrics);
        assert!(tier.load(key, &metrics).is_some());
    }

    #[test]
    fn read_only_mode_loads_but_never_writes() {
        let scratch = Scratch::new();
        let rw = PersistTier::open(PersistConfig::new(&scratch.0)).unwrap();
        let metrics = Metrics::new();
        rw.store(CacheKey(1), &outcome(), &metrics);

        let ro = PersistTier::open(PersistConfig {
            mode: PersistMode::ReadOnly,
            ..PersistConfig::new(&scratch.0)
        })
        .unwrap();
        assert!(ro.load(CacheKey(1), &metrics).is_some());
        ro.store(CacheKey(2), &outcome(), &metrics);
        assert!(
            ro.load(CacheKey(2), &metrics).is_none(),
            "read-only store is a no-op"
        );
        assert!(ro.gc(0, false).is_err());
        assert!(ro.import(&mut io::empty()).is_err());
    }

    #[test]
    fn gc_keeps_newest_entries_and_sweeps_tmp() {
        let scratch = Scratch::new();
        let tier = PersistTier::open(PersistConfig::new(&scratch.0)).unwrap();
        let metrics = Metrics::new();
        for k in 0..4u128 {
            tier.store(CacheKey(k), &outcome(), &metrics);
        }
        fs::write(scratch.0.join("orphan.tmp-1-1"), b"torn").unwrap();
        let report = tier.gc(0, false).unwrap();
        assert_eq!(report.removed_entries, 4);
        assert_eq!(report.removed_tmp, 1);
        assert_eq!(tier.stats().unwrap().entries, 0);
    }

    #[test]
    fn export_import_roundtrips() {
        let scratch = Scratch::new();
        let tier = PersistTier::open(PersistConfig::new(&scratch.0)).unwrap();
        let metrics = Metrics::new();
        for k in [3u128, 1, 2] {
            tier.store(CacheKey(k), &outcome(), &metrics);
        }
        let mut exported = Vec::new();
        let report = tier.export(&mut exported).unwrap();
        assert_eq!(report.exported, 3);
        assert_eq!(report.skipped, 0);

        let target = Scratch::new();
        let fresh = PersistTier::open(PersistConfig::new(&target.0)).unwrap();
        let imported = fresh.import(&mut exported.as_slice()).unwrap();
        assert_eq!(imported.imported, 3);
        assert_eq!(imported.rejected, 0);
        for k in [1u128, 2, 3] {
            assert!(fresh.load(CacheKey(k), &metrics).is_some(), "key {k}");
        }
        // A second export of the imported dir is byte-identical: the
        // format is canonical.
        let mut again = Vec::new();
        fresh.export(&mut again).unwrap();
        assert_eq!(exported, again);
    }

    #[test]
    fn import_rejects_garbage_without_aborting() {
        let scratch = Scratch::new();
        let tier = PersistTier::open(PersistConfig::new(&scratch.0)).unwrap();
        let header = format!(r#"{{"format_version":{FORMAT_VERSION},"kind":"ppe-cache-export"}}"#);
        let good = format!(
            r#"{{"entry":{},"key":"{}"}}"#,
            encode_payload(&outcome()),
            CacheKey(9)
        );
        let stream = format!("{header}\nnot json\n{{\"key\":\"zz\"}}\n{good}\n");
        let report = tier.import(&mut stream.as_bytes()).unwrap();
        assert_eq!(report.imported, 1);
        assert_eq!(report.rejected, 2);
        // Wrong-version header refuses the stream outright.
        let bad = "{\"format_version\":99,\"kind\":\"ppe-cache-export\"}\n";
        assert!(tier.import(&mut bad.as_bytes()).is_err());
    }

    #[test]
    fn fault_report_renders_like_a_degradation_report() {
        let report = FaultReport {
            counts: {
                let mut c = [0u64; FAULT_KINDS];
                c[FaultKind::Truncated as usize] = 2;
                c[FaultKind::ChecksumMismatch as usize] = 1;
                c
            },
        };
        assert_eq!(report.total(), 3);
        assert_eq!(report.to_string(), "truncated ×2, checksum-mismatch ×1");
        assert_eq!(
            report.to_json().render(),
            r#"{"checksum-mismatch":1,"truncated":2}"#
        );
        assert_eq!(FaultReport::default().to_string(), "no disk faults");
    }
}
