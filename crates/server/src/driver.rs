//! The batch driver: a fixed pool of big-stack workers draining a
//! work-stealing set of specialization requests.
//!
//! Requests cross the thread boundary as plain data (see
//! [`crate::request`]); each worker owns a private [`EngineContext`] and
//! shares the [`SpecializeService`]'s caches. Results land in their
//! request's input slot, so the output order is the input order no matter
//! which worker ran what.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::thread;

use crate::engine::EngineContext;
use crate::request::{SpecializeRequest, SpecializeResponse};
use crate::service::SpecializeService;

/// Engines recurse on the structure of the program being specialized;
/// deep programs need deep stacks, so every worker gets a large one
/// (matching the CLI's dedicated driver thread).
pub const WORKER_STACK_BYTES: usize = 256 * 1024 * 1024;

/// Knobs for one batch run.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker count; `0` and `1` both mean "run inline on this thread".
    pub jobs: usize,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions { jobs: 1 }
    }
}

/// Runs every request against `service`, returning responses in request
/// order. With `jobs > 1`, requests are distributed round-robin over
/// per-worker deques; an idle worker steals from the back of its
/// neighbors' queues, so a batch of mixed cheap and expensive requests
/// still keeps every worker busy.
pub fn run_batch(
    service: &SpecializeService,
    requests: &[SpecializeRequest],
    options: BatchOptions,
) -> Vec<SpecializeResponse> {
    let jobs = options.jobs.max(1).min(requests.len().max(1));
    if jobs <= 1 {
        let mut ctx = EngineContext::new();
        return requests
            .iter()
            .map(|r| service.handle(r, &mut ctx))
            .collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, _) in requests.iter().enumerate() {
        queues[i % jobs]
            .lock()
            .expect("queue poisoned")
            .push_back(i);
    }
    let results: Vec<Mutex<Option<SpecializeResponse>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();
    let remaining = AtomicUsize::new(requests.len());
    service
        .metrics()
        .queue_depth
        .store(requests.len() as u64, Relaxed);

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for worker in 0..jobs {
            let queues = &queues;
            let results = &results;
            let remaining = &remaining;
            let spawned = thread::Builder::new()
                .name(format!("ppe-worker-{worker}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    work(service, requests, queues, results, remaining, worker);
                });
            match spawned {
                Ok(handle) => handles.push(handle),
                // Out of threads: the workers already spawned (or, in the
                // worst case, this thread below) will drain the queues.
                Err(_) => break,
            }
        }
        if handles.is_empty() {
            work(service, requests, &queues, &results, &remaining, 0);
        }
    });

    service.metrics().queue_depth.store(0, Relaxed);
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every request was drained")
        })
        .collect()
}

/// One worker's drain loop: pop from the front of our own deque, and when
/// it runs dry, steal from the *back* of the others — stolen work is the
/// work its owner would have reached last, which keeps contention low.
fn work(
    service: &SpecializeService,
    requests: &[SpecializeRequest],
    queues: &[Mutex<VecDeque<usize>>],
    results: &[Mutex<Option<SpecializeResponse>>],
    remaining: &AtomicUsize,
    me: usize,
) {
    let mut ctx = EngineContext::new();
    loop {
        let job = next_job(queues, me);
        let Some(index) = job else {
            if remaining.load(Relaxed) == 0 {
                return;
            }
            // Another worker holds the last jobs; yield rather than spin.
            thread::yield_now();
            continue;
        };
        let response = service.handle(&requests[index], &mut ctx);
        *results[index].lock().expect("result slot poisoned") = Some(response);
        let left = remaining.fetch_sub(1, Relaxed) - 1;
        service.metrics().queue_depth.store(left as u64, Relaxed);
        if left == 0 {
            return;
        }
    }
}

fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(index) = queues[me].lock().expect("queue poisoned").pop_front() {
        return Some(index);
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Some(index) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some(index);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";

    fn batch(n: usize) -> Vec<SpecializeRequest> {
        (0..n)
            .map(|i| SpecializeRequest::new(POWER, vec!["_".into(), format!("{}", i % 4)]))
            .collect()
    }

    #[test]
    fn parallel_batches_match_serial_batches() {
        let requests = batch(24);
        let serial = {
            let service = SpecializeService::new(ServiceConfig::default());
            run_batch(&service, &requests, BatchOptions { jobs: 1 })
        };
        let parallel = {
            let service = SpecializeService::new(ServiceConfig::default());
            run_batch(&service, &requests, BatchOptions { jobs: 8 })
        };
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.outcome.as_ref().unwrap().residual,
                p.outcome.as_ref().unwrap().residual
            );
        }
    }

    #[test]
    fn repeated_work_in_a_batch_is_shared() {
        let service = SpecializeService::new(ServiceConfig::default());
        let responses = run_batch(&service, &batch(32), BatchOptions { jobs: 4 });
        assert!(responses.iter().all(|r| r.outcome.is_ok()));
        let s = service.metrics().snapshot();
        // 32 requests over 4 distinct keys: everything past the first
        // computation of each key is a hit or a coalesced wait.
        assert_eq!(s.cache_misses, 4, "{s:?}");
        assert_eq!(s.cache_hits + s.dedup_coalesced, 28, "{s:?}");
        assert_eq!(s.requests, 32);
        assert_eq!(service.metrics().queue_depth.load(Relaxed), 0);
    }

    #[test]
    fn more_jobs_than_requests_is_fine() {
        let service = SpecializeService::new(ServiceConfig::default());
        let responses = run_batch(&service, &batch(2), BatchOptions { jobs: 16 });
        assert_eq!(responses.len(), 2);
        assert!(responses.iter().all(|r| r.outcome.is_ok()));
    }

    #[test]
    fn empty_batches_return_nothing() {
        let service = SpecializeService::new(ServiceConfig::default());
        assert!(run_batch(&service, &[], BatchOptions { jobs: 8 }).is_empty());
    }
}
