//! The long-lived specialization service: shared caches + metrics +
//! request handling.

use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ppe_analyze::depgraph::DepGraph;
use ppe_lang::diag::Diagnostic;
use ppe_lang::{parse_program, Program};
use ppe_online::{Budget, DegradationEvent};

use crate::cache::ResidualCache;
use crate::engine::{self, EngineContext};
use crate::metrics::Metrics;
use crate::persist::{PersistConfig, PersistTier};
use crate::request::{CacheDisposition, SpecializeOutput, SpecializeRequest, SpecializeResponse};

/// Sizing knobs for one service instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Total residual-cache budget in bytes, split across shards.
    pub cache_bytes: usize,
    /// Shard count (rounded up to a power of two).
    pub shards: usize,
    /// Optional disk persistence tier beneath the in-memory cache;
    /// `None` disables persistence entirely.
    pub persist: Option<PersistConfig>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            cache_bytes: 64 << 20,
            shards: 16,
            persist: None,
        }
    }
}

/// Upper bound on retained parsed programs; a serve loop fed unbounded
/// distinct programs resets the parse cache rather than growing forever.
const MAX_PARSED_PROGRAMS: usize = 128;

/// A concurrent specialization service.
///
/// One instance is shared (`Arc` or borrow) by every worker; all state is
/// behind its own synchronization. The handle path is:
/// parse-cache → resolve (facets, inputs, cache key) → residual cache
/// (single-flight) → engine.
///
/// # Examples
///
/// ```
/// use ppe_server::{EngineContext, ServiceConfig, SpecializeRequest, SpecializeService};
///
/// let service = SpecializeService::new(ServiceConfig::default());
/// let mut ctx = EngineContext::new();
/// let req = SpecializeRequest::new(
///     "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
///     vec!["_".into(), "3".into()],
/// );
/// let first = service.handle(&req, &mut ctx);
/// let again = service.handle(&req, &mut ctx);
/// assert!(first.outcome.is_ok());
/// assert_eq!(
///     again.outcome.unwrap().residual,
///     first.outcome.unwrap().residual,
/// );
/// assert_eq!(service.metrics().snapshot().cache_hits, 1);
/// ```
#[derive(Debug)]
pub struct SpecializeService {
    cache: ResidualCache,
    metrics: Metrics,
    programs: Mutex<HashMap<String, ParsedProgram>>,
    /// Last observed closure fingerprint per definition name, across
    /// every program this service has parsed. When a new parse shows a
    /// different fingerprint for a known name, that definition's cached
    /// residuals just became unreachable-by-key — counted as
    /// `depgraph_invalidations` so operators can see how much of an edit
    /// actually invalidated (the complement is the incremental win).
    entry_fps: Mutex<HashMap<String, u64>>,
    persist: Option<PersistTier>,
    persist_error: Option<String>,
}

/// A parse-cache entry: the program, its dependency graph (call edges +
/// per-definition closure fingerprints, the program component of every
/// cache key), and the analyzer's pre-flight warnings (computed once per
/// distinct source, attached to every response that uses it).
type ParsedProgram = (Arc<Program>, Arc<DepGraph>, Arc<Vec<Diagnostic>>);

impl SpecializeService {
    /// A fresh service with empty caches.
    ///
    /// Building the service never fails: if the configured persistence
    /// tier cannot be opened (missing disk, permission trouble), the
    /// service degrades to memory-only and records the reason in
    /// [`SpecializeService::persist_error`] — a broken cache directory
    /// must cost warm starts, not availability.
    pub fn new(config: ServiceConfig) -> SpecializeService {
        let (persist, persist_error) = match config.persist {
            None => (None, None),
            Some(persist_config) => match PersistTier::open(persist_config) {
                Ok(tier) => (Some(tier), None),
                Err(msg) => (None, Some(msg)),
            },
        };
        SpecializeService {
            cache: ResidualCache::new(config.cache_bytes, config.shards),
            metrics: Metrics::new(),
            programs: Mutex::new(HashMap::new()),
            entry_fps: Mutex::new(HashMap::new()),
            persist,
            persist_error,
        }
    }

    /// The service's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The residual cache (mainly for tests and reports).
    pub fn cache(&self) -> &ResidualCache {
        &self.cache
    }

    /// The disk persistence tier, when one is active.
    pub fn persist(&self) -> Option<&PersistTier> {
        self.persist.as_ref()
    }

    /// Why the configured persistence tier is inactive, if it failed to
    /// open (the service then runs memory-only).
    pub fn persist_error(&self) -> Option<&str> {
        self.persist_error.as_deref()
    }

    /// Answers one request on the calling thread. `ctx` is the worker's
    /// private state (analysis cache); use one per thread and reuse it
    /// across requests.
    pub fn handle(&self, req: &SpecializeRequest, ctx: &mut EngineContext) -> SpecializeResponse {
        let start = Instant::now();
        self.metrics.requests.fetch_add(1, Relaxed);
        // Pre-flight: an unparseable program gets the analyzer's full
        // structured report (every finding, not just the parser's first
        // error); a parsed one carries its cached warnings.
        let (resolved, diagnostics) = match self.program(&req.program_src) {
            Err(msg) => {
                let report = ppe_analyze::check_source(&req.program_src);
                (Err(msg), report.diagnostics)
            }
            Ok((program, depgraph, warnings)) => (
                engine::resolve(req, program, &depgraph),
                warnings.as_ref().clone(),
            ),
        };
        let mut response = match resolved {
            Err(msg) => SpecializeResponse::error(msg),
            Ok(resolved) => {
                // The disk tier sits *under* the in-memory LRU, inside
                // the single-flight closure: N concurrent requests for an
                // absent key cost one disk read (or one compute), and a
                // disk hit is promoted into the in-memory cache by the
                // normal miss path. Only genuinely computed outcomes are
                // written back.
                let from_disk = std::cell::Cell::new(false);
                let fetched = self.cache.get_or_compute(resolved.key, &self.metrics, || {
                    if let Some(tier) = &self.persist {
                        if let Some(hit) = tier.load(resolved.key, &self.metrics) {
                            from_disk.set(true);
                            return Ok(hit);
                        }
                    }
                    let outcome = engine::run(req, &resolved, ctx, &self.metrics)?;
                    if let Some(tier) = &self.persist {
                        tier.store(resolved.key, &outcome, &self.metrics);
                    }
                    Ok(outcome)
                });
                let disposition =
                    if fetched.disposition == CacheDisposition::Miss && from_disk.get() {
                        CacheDisposition::Disk
                    } else {
                        fetched.disposition
                    };
                match fetched.outcome {
                    Err(msg) => SpecializeResponse {
                        outcome: Err(msg),
                        disposition,
                        key: Some(resolved.key),
                        wall_micros: 0,
                        diagnostics: Vec::new(),
                        exec: None,
                        shed: false,
                    },
                    Ok(outcome) => {
                        let mut degradations = outcome.degradations.clone();
                        if fetched.rejected_bytes.is_some() {
                            // The residual was computed but was too large
                            // to retain: a capacity degradation this
                            // request should see in its own report.
                            merge_event(
                                &mut degradations,
                                DegradationEvent {
                                    budget: Budget::CacheBytes,
                                    function: Some(resolved.entry),
                                    depth: 0,
                                    count: 1,
                                },
                            );
                        }
                        SpecializeResponse {
                            outcome: Ok(SpecializeOutput {
                                residual: outcome.residual.clone(),
                                stats: outcome.stats,
                                degradations,
                            }),
                            disposition,
                            key: Some(resolved.key),
                            wall_micros: 0,
                            diagnostics: Vec::new(),
                            exec: None,
                            shed: false,
                        }
                    }
                }
            }
        };
        response.diagnostics = diagnostics;
        // Execution rides *outside* the residual cache: the residual is
        // fetched (or computed) once per distinct specialization above,
        // then each request runs it on its own concrete inputs. The
        // residual text re-parses through the shared parse cache, and
        // repeat executions hit the VM's chunk cache below that.
        if let (Ok(out), Some(exec)) = (&response.outcome, &req.execute) {
            response.exec = Some(match self.program(&out.residual) {
                Ok((residual, _, _)) => {
                    engine::execute_residual(&residual, exec, &req.config, &self.metrics)
                }
                Err(msg) => {
                    // A residual that fails to re-parse would be an engine
                    // bug; surface it as an execution error rather than
                    // failing the whole (successful) specialization.
                    self.metrics.executes.fetch_add(1, Relaxed);
                    self.metrics.exec_errors.fetch_add(1, Relaxed);
                    crate::request::ExecOutcome {
                        value: Err(format!("residual failed to parse: {msg}")),
                        engine: exec.engine,
                        chunks_compiled: 0,
                        chunk_cache_hit: false,
                        ops_executed: 0,
                        fuel_used: 0,
                    }
                }
            });
        }
        response.wall_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        match &response.outcome {
            Err(_) => {
                self.metrics.errors.fetch_add(1, Relaxed);
            }
            Ok(out) if !out.degradations.is_empty() => {
                self.metrics.degraded.fetch_add(1, Relaxed);
            }
            Ok(_) => {}
        }
        if response.disposition == CacheDisposition::Unreached {
            self.metrics.errors.load(Relaxed); // already counted above
        }
        self.metrics.observe_wall(response.wall_micros);
        response
    }

    /// Parses `src` through the shared parse cache, returning the
    /// program, its dependency graph, and its pre-flight warnings.
    fn program(&self, src: &str) -> Result<ParsedProgram, String> {
        {
            let cache = self.programs.lock().expect("program cache poisoned");
            if let Some((program, depgraph, warnings)) = cache.get(src) {
                return Ok((
                    Arc::clone(program),
                    Arc::clone(depgraph),
                    Arc::clone(warnings),
                ));
            }
        }
        // Parse outside the lock: parsing is cheap but not free, and a
        // slow parse must not serialize unrelated requests. A racing
        // duplicate parse of the same source is harmless (same result).
        let program = parse_program(src).map_err(|e| e.to_string())?;
        let program = Arc::new(program);
        let depgraph = Arc::new(DepGraph::of_program(&program));
        self.metrics.depgraph_analyses.fetch_add(1, Relaxed);
        // Fold the new closure fingerprints into the per-name history:
        // a changed fingerprint means this edit invalidated that entry
        // point's cached residuals (names outside the edit's reachable
        // closure keep their fingerprints and stay warm).
        {
            let mut fps = self.entry_fps.lock().expect("entry fps poisoned");
            for &name in depgraph.names() {
                let fp = depgraph
                    .closure_fingerprint(name)
                    .expect("name comes from the same graph");
                if let Some(prev) = fps.insert(name.as_str().to_owned(), fp) {
                    if prev != fp {
                        self.metrics.depgraph_invalidations.fetch_add(1, Relaxed);
                    }
                }
            }
        }
        // A validated program has no analyzer errors; what remains are
        // warnings (shadowing, unfold-safety, dead code), computed once
        // here and shared by every request for this source.
        let warnings = Arc::new(ppe_analyze::check_program(&program));
        let mut cache = self.programs.lock().expect("program cache poisoned");
        if cache.len() >= MAX_PARSED_PROGRAMS {
            cache.clear();
        }
        cache.insert(
            src.to_owned(),
            (
                Arc::clone(&program),
                Arc::clone(&depgraph),
                Arc::clone(&warnings),
            ),
        );
        Ok((program, depgraph, warnings))
    }
}

/// Folds `event` into `events`, merging with an existing entry for the
/// same budget and function (mirrors `DegradationReport` merging).
fn merge_event(events: &mut Vec<DegradationEvent>, event: DegradationEvent) {
    if let Some(mine) = events
        .iter_mut()
        .find(|m| m.budget == event.budget && m.function == event.function)
    {
        mine.count += event.count;
        return;
    }
    events.push(event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Engine;
    use ppe_online::ExhaustionPolicy;

    const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";

    fn request(inputs: &[&str]) -> SpecializeRequest {
        SpecializeRequest::new(POWER, inputs.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        let req = request(&["_", "3"]);
        let first = service.handle(&req, &mut ctx);
        assert_eq!(first.disposition, CacheDisposition::Miss, "{first:?}");
        let out = first.outcome.unwrap();
        assert!(out.residual.contains("power"), "{}", out.residual);
        let second = service.handle(&req, &mut ctx);
        assert_eq!(second.disposition, CacheDisposition::Hit);
        assert_eq!(second.outcome.unwrap().residual, out.residual);
        let s = service.metrics().snapshot();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
    }

    #[test]
    fn different_policies_never_share_entries() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        let req = request(&["_", "3"]);
        service.handle(&req, &mut ctx);
        let mut tighter = request(&["_", "3"]);
        tighter.config.max_unfold_depth = 1;
        tighter.config.on_exhaustion = ExhaustionPolicy::Degrade;
        let r = service.handle(&tighter, &mut ctx);
        assert_eq!(r.disposition, CacheDisposition::Miss);
    }

    #[test]
    fn parse_errors_are_reported_not_cached() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        let req = SpecializeRequest::new("(define (f x)", vec!["_".into()]);
        let r = service.handle(&req, &mut ctx);
        assert_eq!(r.disposition, CacheDisposition::Unreached);
        assert!(r.outcome.is_err());
        assert_eq!(service.metrics().snapshot().errors, 1);
        assert_eq!(service.cache().len(), 0);
        // Pre-flight: the error response carries the analyzer's report.
        assert_eq!(r.diagnostics[0].code, "E0001");
    }

    #[test]
    fn preflight_reports_every_semantic_error_not_just_the_first() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        // Two unbound variables: parse_program's validation stops at one,
        // the attached diagnostics name both.
        let req = SpecializeRequest::new("(define (f x) (+ y z))", vec!["_".into()]);
        let r = service.handle(&req, &mut ctx);
        assert!(r.outcome.is_err());
        let unbound: Vec<&str> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == "E0004")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(unbound.len(), 2, "{:?}", r.diagnostics);
        // And the wire rendering exposes them.
        let rendered = r.to_json(None).render();
        assert!(rendered.contains("\"diagnostics\""), "{rendered}");
        assert!(rendered.contains("E0004"), "{rendered}");
    }

    #[test]
    fn preflight_warnings_ride_along_on_success() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        let req = SpecializeRequest::new(
            "(define (f x u) (if (= x 0) 1 (f (- x 1) 0)))",
            vec!["5".into(), "_".into()],
        );
        let r = service.handle(&req, &mut ctx);
        assert!(r.outcome.is_ok());
        // `u` is unused: W0003 rides along without failing the request.
        assert!(
            r.diagnostics.iter().any(|d| d.code == "W0003"),
            "{:?}",
            r.diagnostics
        );
        // A diagnostic-free program keeps the wire format unchanged.
        let clean = SpecializeRequest::new(POWER, vec!["_".into(), "3".into()]);
        let r = service.handle(&clean, &mut ctx);
        assert!(r.diagnostics.is_empty());
        assert!(!r.to_json(None).render().contains("diagnostics"));
    }

    #[test]
    fn arity_and_function_validation() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        let r = service.handle(&request(&["_"]), &mut ctx);
        assert!(r.outcome.unwrap_err().contains("expects 2 inputs"));
        let mut named = request(&["_", "3"]);
        named.function = Some("nope".into());
        let r = service.handle(&named, &mut ctx);
        assert!(r.outcome.unwrap_err().contains("no function"));
    }

    #[test]
    fn offline_engine_reuses_analysis_across_requests() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        let mut a = request(&["_:sign=pos", "2"]);
        a.engine = Engine::Offline;
        a.facets = vec!["sign".into()];
        let mut b = request(&["_:sign=pos", "2"]);
        b.engine = Engine::Offline;
        b.facets = vec!["sign".into()];
        // Different optimize flag → different residual key, same analysis.
        b.optimize = true;
        assert!(service.handle(&a, &mut ctx).outcome.is_ok());
        assert!(service.handle(&b, &mut ctx).outcome.is_ok());
        let s = service.metrics().snapshot();
        assert_eq!(s.cache_misses, 2, "distinct residual keys");
        assert_eq!(s.analysis_misses, 1, "one analysis");
        assert_eq!(s.analysis_hits, 1, "reused for the second request");
        assert_eq!(ctx.cached_analyses(), 1);
    }

    #[test]
    fn cache_bytes_degradation_is_surfaced() {
        // Budget far below any residual: everything is rejected.
        let service = SpecializeService::new(ServiceConfig {
            cache_bytes: 16,
            shards: 1,
            persist: None,
        });
        let mut ctx = EngineContext::new();
        let r = service.handle(&request(&["_", "3"]), &mut ctx);
        let out = r.outcome.unwrap();
        assert!(
            out.degradations
                .iter()
                .any(|e| e.budget == Budget::CacheBytes),
            "{:?}",
            out.degradations
        );
        assert_eq!(service.metrics().snapshot().cache_rejected, 1);
        assert_eq!(service.metrics().snapshot().degraded, 1);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ppe-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn persisted_config(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig {
            persist: Some(crate::persist::PersistConfig::new(dir)),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn restart_warms_from_disk_and_promotes_to_memory() {
        let dir = scratch_dir("restart");
        let req = request(&["_", "3"]);
        let residual = {
            let service = SpecializeService::new(persisted_config(&dir));
            assert!(service.persist_error().is_none());
            let mut ctx = EngineContext::new();
            let r = service.handle(&req, &mut ctx);
            assert_eq!(r.disposition, CacheDisposition::Miss);
            assert_eq!(service.metrics().snapshot().disk_stores, 1);
            r.outcome.unwrap().residual
        };
        // A fresh process: the in-memory cache is empty, the disk is not.
        let service = SpecializeService::new(persisted_config(&dir));
        let mut ctx = EngineContext::new();
        let r = service.handle(&req, &mut ctx);
        assert_eq!(r.disposition, CacheDisposition::Disk, "warm from disk");
        assert_eq!(r.outcome.unwrap().residual, residual, "identical residual");
        // And the disk hit was promoted: the next request is a memory hit.
        let r = service.handle(&req, &mut ctx);
        assert_eq!(r.disposition, CacheDisposition::Hit);
        let s = service.metrics().snapshot();
        assert_eq!((s.disk_hits, s.cache_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unopenable_cache_dir_degrades_to_memory_only() {
        // A file where the directory should be: open fails, service runs.
        let dir = scratch_dir("degraded");
        std::fs::write(&dir, b"not a directory").unwrap();
        let service = SpecializeService::new(persisted_config(&dir));
        assert!(service.persist().is_none());
        assert!(service.persist_error().is_some());
        let mut ctx = EngineContext::new();
        let r = service.handle(&request(&["_", "3"]), &mut ctx);
        assert!(r.outcome.is_ok(), "requests survive a dead cache dir");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn execute_runs_the_residual_on_both_engines() {
        use crate::request::{ExecEngine, ExecuteRequest};
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        // power specialized on n=3, then executed at x=2 → 8, twice per
        // engine so the chunk cache gets exercised. The chunk cache is
        // process-wide, so this test needs its own program (a sibling
        // test executing the shared POWER residual would warm it).
        let mut req = SpecializeRequest::new(
            "(define (power3 x n) (if (= n 0) 1 (* x (power3 x (- n 1)))))",
            vec!["_".into(), "3".into()],
        );
        req.execute = Some(ExecuteRequest {
            inputs: vec!["2".into()],
            engine: ExecEngine::Vm,
        });
        let first = service.handle(&req, &mut ctx);
        let exec = first.exec.as_ref().unwrap();
        assert_eq!(exec.value.as_deref(), Ok("8"), "{first:?}");
        assert!(exec.chunks_compiled > 0, "cold compile");
        let second = service.handle(&req, &mut ctx);
        let exec2 = second.exec.as_ref().unwrap();
        assert_eq!(exec2.value.as_deref(), Ok("8"));
        assert!(exec2.chunk_cache_hit, "warm chunk cache");
        assert_eq!(exec2.chunks_compiled, 0);

        req.execute.as_mut().unwrap().engine = ExecEngine::Ast;
        let ast = service.handle(&req, &mut ctx);
        let exec3 = ast.exec.as_ref().unwrap();
        assert_eq!(exec3.value.as_deref(), Ok("8"), "oracle agrees");
        assert_eq!(exec3.fuel_used, exec2.fuel_used, "identical fuel meter");

        let s = service.metrics().snapshot();
        assert_eq!(s.executes, 3);
        assert_eq!(s.exec_errors, 0);
        assert_eq!(s.vm_chunk_cache_hits, 1);
        assert!(s.vm_chunks_compiled > 0);
        assert!(s.vm_opcodes_executed > 0);

        // And the wire rendering carries the exec object.
        let rendered = second.to_json(None).render();
        assert!(rendered.contains("\"exec\":{"), "{rendered}");
        assert!(rendered.contains("\"chunk_cache\":\"hit\""), "{rendered}");
    }

    #[test]
    fn execute_errors_ride_along_without_failing_the_request() {
        use crate::request::{ExecEngine, ExecuteRequest};
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        // Wrong arity for the residual entry: the specialization still
        // succeeds and is cached; only the exec outcome reports the error.
        let mut req = request(&["_", "3"]);
        req.execute = Some(ExecuteRequest {
            inputs: vec!["1".into(), "2".into()],
            engine: ExecEngine::Vm,
        });
        let r = service.handle(&req, &mut ctx);
        assert!(r.outcome.is_ok());
        assert!(r.exec.unwrap().value.is_err());
        // Unparseable execute value: same story.
        req.execute.as_mut().unwrap().inputs = vec!["wat".into()];
        let r = service.handle(&req, &mut ctx);
        assert!(r.outcome.is_ok());
        assert!(r.exec.unwrap().value.unwrap_err().contains("execute input"));
        assert_eq!(service.metrics().snapshot().exec_errors, 2);
        assert_eq!(service.metrics().snapshot().errors, 0);
    }

    #[test]
    fn engine_errors_carry_the_key_and_count_as_errors() {
        let service = SpecializeService::new(ServiceConfig::default());
        let mut ctx = EngineContext::new();
        let mut req = request(&["_", "1000000"]);
        req.config.fuel = 10; // trips immediately under Fail
        let r = service.handle(&req, &mut ctx);
        assert!(r.outcome.is_err());
        assert!(r.key.is_some());
        assert_eq!(service.metrics().snapshot().errors, 1);
    }
}
