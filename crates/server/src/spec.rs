//! Textual specification of specialization inputs and facet sets.
//!
//! One grammar shared by every front door — the `ppe` CLI commands, the
//! `ppe batch` request vectors, and the `ppe serve` JSON protocol — so a
//! request means the same thing wherever it arrives:
//!
//! ```text
//! VALUE ::= 5 | -3 | 2.5 | #t | #f | vec:1.0,2.0,3.0
//! INPUT ::= VALUE                       a known input
//!         | _                           a dynamic input
//!         | _:FACET=SPEC[:FACET=SPEC]…  dynamic with facet refinements
//! SPEC  ::= sign=pos|neg|zero | parity=even|odd | size=N
//!         | range=LO..HI (either bound may be empty)
//!         | const-set=V|V|…
//! ```

use ppe_core::facets::{
    ConstSetFacet, ConstSetVal, ContentsFacet, ParityFacet, ParityVal, RangeFacet, RangeVal,
    SignFacet, SignVal, SizeFacet, SizeVal, TypeFacet,
};
use ppe_core::{AbsVal, FacetSet};
use ppe_lang::Value;
use ppe_online::PeInput;

/// Every built-in facet name, in canonical order — the default facet set.
pub const ALL_FACETS: &[&str] = &[
    "sign",
    "parity",
    "range",
    "size",
    "contents",
    "const-set",
    "type",
];

/// Builds a [`FacetSet`] from facet names (see [`ALL_FACETS`]).
///
/// # Errors
///
/// Names an unknown facet.
pub fn build_facets(names: &[String]) -> Result<FacetSet, String> {
    let mut set = FacetSet::new();
    for n in names {
        match n.as_str() {
            "sign" => {
                set.push(Box::new(SignFacet));
            }
            "parity" => {
                set.push(Box::new(ParityFacet));
            }
            "range" => {
                set.push(Box::new(RangeFacet));
            }
            "size" => {
                set.push(Box::new(SizeFacet));
            }
            "contents" => {
                set.push(Box::new(ContentsFacet));
            }
            "const-set" => {
                set.push(Box::new(ConstSetFacet::default()));
            }
            "type" => {
                set.push(Box::new(TypeFacet));
            }
            other => return Err(format!("unknown facet `{other}`")),
        }
    }
    Ok(set)
}

/// Parses a concrete value: `5`, `-3`, `2.5`, `#t`, `#f`, `vec:1.0,2.0`.
///
/// # Errors
///
/// Describes the first token that fails to parse.
pub fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(rest) = s.strip_prefix("vec:") {
        let elems: Result<Vec<Value>, String> =
            rest.split(',').map(|e| parse_value(e.trim())).collect();
        return Ok(Value::vector(elems?));
    }
    match s {
        "#t" => return Ok(Value::Bool(true)),
        "#f" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    if let Ok(x) = s.parse::<f64>() {
        if x.is_nan() {
            return Err("NaN is not a value".to_owned());
        }
        return Ok(Value::Float(x));
    }
    Err(format!("cannot parse value `{s}`"))
}

/// Parses one facet refinement `facet=spec` into `(facet name, value)`.
///
/// # Errors
///
/// Describes the malformed refinement.
pub fn parse_refinement(s: &str) -> Result<(String, AbsVal), String> {
    let (facet, spec) = s
        .split_once('=')
        .ok_or_else(|| format!("refinement `{s}` must look like facet=value"))?;
    let abs = match facet {
        "sign" => AbsVal::new(match spec {
            "pos" => SignVal::Pos,
            "neg" => SignVal::Neg,
            "zero" => SignVal::Zero,
            _ => return Err(format!("sign must be pos|neg|zero, got `{spec}`")),
        }),
        "parity" => AbsVal::new(match spec {
            "even" => ParityVal::Even,
            "odd" => ParityVal::Odd,
            _ => return Err(format!("parity must be even|odd, got `{spec}`")),
        }),
        "size" => AbsVal::new(SizeVal::Known(
            spec.parse::<i64>()
                .map_err(|_| format!("size must be an integer, got `{spec}`"))?,
        )),
        "range" => {
            let (lo, hi) = spec
                .split_once("..")
                .ok_or_else(|| format!("range must be LO..HI, got `{spec}`"))?;
            let parse_bound = |b: &str| -> Result<Option<i64>, String> {
                if b.is_empty() {
                    Ok(None)
                } else {
                    b.parse::<i64>()
                        .map(Some)
                        .map_err(|_| format!("bad range bound `{b}`"))
                }
            };
            AbsVal::new(RangeVal::Range {
                lo: parse_bound(lo)?,
                hi: parse_bound(hi)?,
            })
        }
        "const-set" => {
            let consts: Result<Vec<_>, String> = spec
                .split('|')
                .map(|c| {
                    parse_value(c)?
                        .to_const()
                        .ok_or_else(|| format!("`{c}` is not a constant"))
                })
                .collect();
            AbsVal::new(ConstSetVal::of(consts?))
        }
        other => return Err(format!("no refinement syntax for facet `{other}`")),
    };
    Ok((facet.to_owned(), abs))
}

/// Parses one specialization input (see the module grammar).
///
/// # Errors
///
/// As for [`parse_value`] and [`parse_refinement`].
pub fn parse_input(s: &str) -> Result<PeInput, String> {
    if s == "_" {
        return Ok(PeInput::dynamic());
    }
    if let Some(rest) = s.strip_prefix("_:") {
        let mut input = PeInput::dynamic();
        for part in rest.split(':') {
            let (facet, abs) = parse_refinement(part)?;
            input = input.with_facet(&facet, abs);
        }
        return Ok(input);
    }
    Ok(PeInput::known(parse_value(s)?))
}

/// Parses a whitespace-separated vector of inputs, e.g. `"_:size=3 5"`.
///
/// # Errors
///
/// As for [`parse_input`].
pub fn parse_input_vector(s: &str) -> Result<Vec<PeInput>, String> {
    s.split_whitespace().map(parse_input).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_values() {
        assert_eq!(parse_value("5").unwrap(), Value::Int(5));
        assert_eq!(parse_value("-3").unwrap(), Value::Int(-3));
        assert_eq!(parse_value("#t").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(
            parse_value("vec:1.0,2.0").unwrap(),
            Value::vector(vec![Value::Float(1.0), Value::Float(2.0)])
        );
        assert!(parse_value("wat").is_err());
    }

    #[test]
    fn parses_inputs() {
        assert!(matches!(parse_input("_").unwrap(), PeInput::Dynamic { .. }));
        assert!(matches!(parse_input("7").unwrap(), PeInput::Known(_)));
        let refined = parse_input("_:size=3:sign=pos").unwrap();
        match refined {
            PeInput::Dynamic { refinements } => {
                assert_eq!(refinements.len(), 2);
                assert_eq!(refinements[0].0, "size");
                assert_eq!(refinements[1].0, "sign");
            }
            other => panic!("expected refined dynamic, got {other:?}"),
        }
    }

    #[test]
    fn parses_refinements() {
        assert!(parse_refinement("sign=pos").is_ok());
        assert!(parse_refinement("parity=odd").is_ok());
        assert!(parse_refinement("range=0..10").is_ok());
        assert!(parse_refinement("range=..10").is_ok());
        assert!(parse_refinement("const-set=1|2|3").is_ok());
        assert!(parse_refinement("sign=sideways").is_err());
        assert!(parse_refinement("nonsense").is_err());
    }

    #[test]
    fn parses_input_vectors() {
        let v = parse_input_vector("  _:size=3   5 _ ").unwrap();
        assert_eq!(v.len(), 3);
        assert!(parse_input_vector("_ wat").is_err());
    }

    #[test]
    fn builds_facet_sets() {
        let set = build_facets(&["sign".into(), "size".into()]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(build_facets(&["bogus".into()]).is_err());
        let all: Vec<String> = ALL_FACETS.iter().map(|s| s.to_string()).collect();
        assert_eq!(build_facets(&all).unwrap().len(), ALL_FACETS.len());
    }
}
