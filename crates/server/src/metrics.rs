//! Service metrics: lock-free atomic counters and a JSON snapshot.
//!
//! Workers on every thread bump the same [`Metrics`] instance through
//! `&self` (all counters are atomics with relaxed ordering — they are
//! statistics, not synchronization), and the drivers render a
//! [`MetricsSnapshot`] as one JSON object at the end of a batch or on a
//! `{"cmd":"metrics"}` serve request.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Monotonic counters plus a queue-depth gauge for one service instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted (including ones that later failed).
    pub requests: AtomicU64,
    /// Requests answered from the residual cache.
    pub cache_hits: AtomicU64,
    /// Requests that ran a specialization engine.
    pub cache_misses: AtomicU64,
    /// Requests that blocked on another request's in-flight computation
    /// (single-flight deduplication).
    pub dedup_coalesced: AtomicU64,
    /// Cache entries evicted under the byte budget.
    pub cache_evictions: AtomicU64,
    /// Residuals too large to cache at all.
    pub cache_rejected: AtomicU64,
    /// Analysis-cache hits (offline engine signature reuse).
    pub analysis_hits: AtomicU64,
    /// Analyses computed (offline engine).
    pub analysis_misses: AtomicU64,
    /// Dependency graphs built (one per distinct parsed program source).
    pub depgraph_analyses: AtomicU64,
    /// Definitions whose closure fingerprint changed relative to the
    /// last program that defined the same name — i.e. entries the edit
    /// actually invalidated (defs outside the edit's reachable closure
    /// don't count, which is the point of dependency fingerprints).
    pub depgraph_invalidations: AtomicU64,
    /// Requests answered from the disk persistence tier.
    pub disk_hits: AtomicU64,
    /// Disk lookups that found no entry (absent file).
    pub disk_misses: AtomicU64,
    /// Entries durably written to the disk tier.
    pub disk_stores: AtomicU64,
    /// Disk writes that failed or were refused (full disk, oversized).
    pub disk_store_errors: AtomicU64,
    /// Disk entries rejected as corrupt (truncated, bit-flipped, torn,
    /// wrong version, oversized, misnamed) — each fell back to compute.
    pub disk_corrupt: AtomicU64,
    /// Corrupt disk entries successfully moved into `quarantine/`.
    pub disk_quarantined: AtomicU64,
    /// Residual executions requested (the `execute` path), either engine.
    pub executes: AtomicU64,
    /// Residual executions that ended in an evaluation error.
    pub exec_errors: AtomicU64,
    /// Bytecode chunks compiled by the VM for execute requests.
    pub vm_chunks_compiled: AtomicU64,
    /// Execute requests answered from the VM's process-wide chunk cache
    /// (compilation skipped entirely).
    pub vm_chunk_cache_hits: AtomicU64,
    /// Opcodes the VM dispatched across all execute requests.
    pub vm_opcodes_executed: AtomicU64,
    /// Requests that failed with an error.
    pub errors: AtomicU64,
    /// Requests whose responses carried at least one degradation event.
    pub degraded: AtomicU64,
    /// Requests currently queued or executing (gauge).
    pub queue_depth: AtomicU64,
    /// Total request wall time, microseconds.
    pub wall_micros_total: AtomicU64,
    /// Longest single request, microseconds.
    pub wall_micros_max: AtomicU64,
}

impl Metrics {
    /// A fresh, zeroed instance.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds one completed request's wall time.
    pub fn observe_wall(&self, micros: u64) {
        self.wall_micros_total.fetch_add(micros, Ordering::Relaxed);
        self.wall_micros_max.fetch_max(micros, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (each counter is read
    /// atomically; the set is not a transaction, which is fine for
    /// reporting).
    ///
    /// The `spec_vm_*` and `vm_inlined_calls` fields are read from the
    /// VM's process-wide counters ([`ppe_vm::vm_stats`]) rather than this
    /// instance: the chunk caches they describe are process-global, so a
    /// per-service split would misattribute hits that one service earned
    /// from another's compilations.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let vm = ppe_vm::vm_stats();
        MetricsSnapshot {
            spec_vm_evals: vm.spec_vm_evals,
            spec_vm_chunk_hits: vm.spec_vm_chunk_hits,
            spec_vm_chunk_misses: vm.spec_vm_chunk_misses,
            vm_inlined_calls: vm.vm_inlined_calls,
            requests: r(&self.requests),
            cache_hits: r(&self.cache_hits),
            cache_misses: r(&self.cache_misses),
            dedup_coalesced: r(&self.dedup_coalesced),
            cache_evictions: r(&self.cache_evictions),
            cache_rejected: r(&self.cache_rejected),
            analysis_hits: r(&self.analysis_hits),
            analysis_misses: r(&self.analysis_misses),
            depgraph_analyses: r(&self.depgraph_analyses),
            depgraph_invalidations: r(&self.depgraph_invalidations),
            disk_hits: r(&self.disk_hits),
            disk_misses: r(&self.disk_misses),
            disk_stores: r(&self.disk_stores),
            disk_store_errors: r(&self.disk_store_errors),
            disk_corrupt: r(&self.disk_corrupt),
            disk_quarantined: r(&self.disk_quarantined),
            executes: r(&self.executes),
            exec_errors: r(&self.exec_errors),
            vm_chunks_compiled: r(&self.vm_chunks_compiled),
            vm_chunk_cache_hits: r(&self.vm_chunk_cache_hits),
            vm_opcodes_executed: r(&self.vm_opcodes_executed),
            errors: r(&self.errors),
            degraded: r(&self.degraded),
            queue_depth: r(&self.queue_depth),
            wall_micros_total: r(&self.wall_micros_total),
            wall_micros_max: r(&self.wall_micros_max),
        }
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror Metrics, documented there
pub struct MetricsSnapshot {
    pub requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub dedup_coalesced: u64,
    pub cache_evictions: u64,
    pub cache_rejected: u64,
    pub analysis_hits: u64,
    pub analysis_misses: u64,
    pub depgraph_analyses: u64,
    pub depgraph_invalidations: u64,
    pub disk_hits: u64,
    pub disk_misses: u64,
    pub disk_stores: u64,
    pub disk_store_errors: u64,
    pub disk_corrupt: u64,
    pub disk_quarantined: u64,
    pub executes: u64,
    pub exec_errors: u64,
    pub vm_chunks_compiled: u64,
    pub vm_chunk_cache_hits: u64,
    pub vm_opcodes_executed: u64,
    pub spec_vm_evals: u64,
    pub spec_vm_chunk_hits: u64,
    pub spec_vm_chunk_misses: u64,
    pub vm_inlined_calls: u64,
    pub errors: u64,
    pub degraded: u64,
    pub queue_depth: u64,
    pub wall_micros_total: u64,
    pub wall_micros_max: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::num(self.requests)),
            ("cache_hits", Json::num(self.cache_hits)),
            ("cache_misses", Json::num(self.cache_misses)),
            ("dedup_coalesced", Json::num(self.dedup_coalesced)),
            ("cache_evictions", Json::num(self.cache_evictions)),
            ("cache_rejected", Json::num(self.cache_rejected)),
            ("analysis_hits", Json::num(self.analysis_hits)),
            ("analysis_misses", Json::num(self.analysis_misses)),
            ("depgraph_analyses", Json::num(self.depgraph_analyses)),
            (
                "depgraph_invalidations",
                Json::num(self.depgraph_invalidations),
            ),
            ("disk_hits", Json::num(self.disk_hits)),
            ("disk_misses", Json::num(self.disk_misses)),
            ("disk_stores", Json::num(self.disk_stores)),
            ("disk_store_errors", Json::num(self.disk_store_errors)),
            ("disk_corrupt", Json::num(self.disk_corrupt)),
            ("disk_quarantined", Json::num(self.disk_quarantined)),
            ("executes", Json::num(self.executes)),
            ("exec_errors", Json::num(self.exec_errors)),
            ("vm_chunks_compiled", Json::num(self.vm_chunks_compiled)),
            ("vm_chunk_cache_hits", Json::num(self.vm_chunk_cache_hits)),
            ("vm_opcodes_executed", Json::num(self.vm_opcodes_executed)),
            ("spec_vm_evals", Json::num(self.spec_vm_evals)),
            ("spec_vm_chunk_hits", Json::num(self.spec_vm_chunk_hits)),
            ("spec_vm_chunk_misses", Json::num(self.spec_vm_chunk_misses)),
            ("vm_inlined_calls", Json::num(self.vm_inlined_calls)),
            ("errors", Json::num(self.errors)),
            ("degraded", Json::num(self.degraded)),
            ("queue_depth", Json::num(self.queue_depth)),
            ("wall_micros_total", Json::num(self.wall_micros_total)),
            ("wall_micros_max", Json::num(self.wall_micros_max)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.observe_wall(10);
        m.observe_wall(40);
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.wall_micros_total, 50);
        assert_eq!(s.wall_micros_max, 40);
    }

    #[test]
    fn snapshot_renders_json() {
        let s = Metrics::new().snapshot();
        let text = s.to_json().render();
        assert!(text.starts_with('{'), "{text}");
        assert!(text.contains("\"cache_hits\":0"), "{text}");
        assert!(text.contains("\"queue_depth\":0"), "{text}");
        assert!(text.contains("\"depgraph_analyses\":0"), "{text}");
        assert!(text.contains("\"depgraph_invalidations\":0"), "{text}");
        assert!(text.contains("\"disk_hits\":0"), "{text}");
        assert!(text.contains("\"disk_corrupt\":0"), "{text}");
        assert!(text.contains("\"disk_quarantined\":0"), "{text}");
        assert!(text.contains("\"executes\":0"), "{text}");
        assert!(text.contains("\"vm_chunks_compiled\":0"), "{text}");
        assert!(text.contains("\"vm_chunk_cache_hits\":0"), "{text}");
        assert!(text.contains("\"vm_opcodes_executed\":0"), "{text}");
        // Process-wide counters: other tests in the same process may have
        // bumped them, so assert presence, not value.
        assert!(text.contains("\"spec_vm_evals\":"), "{text}");
        assert!(text.contains("\"spec_vm_chunk_hits\":"), "{text}");
        assert!(text.contains("\"spec_vm_chunk_misses\":"), "{text}");
        assert!(text.contains("\"vm_inlined_calls\":"), "{text}");
    }
}
