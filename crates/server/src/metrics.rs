//! Service metrics: lock-free atomic counters, a fixed-bucket latency
//! histogram, a JSON snapshot, and a Prometheus text exporter.
//!
//! Workers on every thread bump the same [`Metrics`] instance through
//! `&self` (all counters are atomics with relaxed ordering — they are
//! statistics, not synchronization), and the drivers render a
//! [`MetricsSnapshot`] as one JSON object at the end of a batch or on a
//! `{"cmd":"metrics"}` serve request. The TCP front-end additionally
//! exposes the snapshot as Prometheus text
//! ([`MetricsSnapshot::to_prometheus`]) with a stable label taxonomy:
//! cache traffic is `ppe_cache_events_total{tier=…,event=…}`, analysis
//! reuse is `ppe_analysis_cache_total{event=…}`, and request latency is
//! the `ppe_request_duration_us` histogram fed by [`Metrics::observe_wall`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Latency-histogram bucket count: buckets `0..WALL_BUCKETS-1` hold
/// observations of at most `2^i` microseconds (power-of-two bounds, so
/// bucketing is a `leading_zeros`, never a search); the last bucket is
/// `+Inf`. `2^20` µs ≈ 1.05 s, comfortably past any governed request.
pub const WALL_BUCKETS: usize = 22;

/// The inclusive upper bound of histogram bucket `i`, in microseconds;
/// `None` is the `+Inf` bucket.
pub fn bucket_le(i: usize) -> Option<u64> {
    (i + 1 < WALL_BUCKETS).then(|| 1u64 << i)
}

/// The bucket `micros` lands in: the smallest `i` with `micros <= 2^i`,
/// capped at the `+Inf` bucket.
fn bucket_index(micros: u64) -> usize {
    if micros <= 1 {
        return 0;
    }
    let ceil_log2 = 64 - (micros - 1).leading_zeros() as usize;
    ceil_log2.min(WALL_BUCKETS - 1)
}

/// A fixed-bucket latency histogram with power-of-two microsecond bounds.
///
/// Buckets are plain (non-cumulative) atomic counters; the Prometheus
/// rendering accumulates them into the `le`-cumulative form the format
/// requires.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; WALL_BUCKETS],
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> [u64; WALL_BUCKETS] {
        let mut out = [0u64; WALL_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// The upper bound of the bucket containing quantile `q` of `buckets`
/// (0 when empty). Bucket-quantized: an upper bound on the true
/// quantile, never an interpolation.
pub fn histogram_quantile(buckets: &[u64; WALL_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_le(i).unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// Monotonic counters plus a queue-depth gauge for one service instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted (including ones that later failed).
    pub requests: AtomicU64,
    /// Requests answered from the residual cache.
    pub cache_hits: AtomicU64,
    /// Requests that ran a specialization engine.
    pub cache_misses: AtomicU64,
    /// Requests that blocked on another request's in-flight computation
    /// (single-flight deduplication).
    pub dedup_coalesced: AtomicU64,
    /// Cache entries evicted under the byte budget.
    pub cache_evictions: AtomicU64,
    /// Residuals too large to cache at all.
    pub cache_rejected: AtomicU64,
    /// Analysis-cache hits (offline engine signature reuse).
    pub analysis_hits: AtomicU64,
    /// Analyses computed (offline engine).
    pub analysis_misses: AtomicU64,
    /// Dependency graphs built (one per distinct parsed program source).
    pub depgraph_analyses: AtomicU64,
    /// Definitions whose closure fingerprint changed relative to the
    /// last program that defined the same name — i.e. entries the edit
    /// actually invalidated (defs outside the edit's reachable closure
    /// don't count, which is the point of dependency fingerprints).
    pub depgraph_invalidations: AtomicU64,
    /// Requests answered from the disk persistence tier.
    pub disk_hits: AtomicU64,
    /// Disk lookups that found no entry (absent file).
    pub disk_misses: AtomicU64,
    /// Entries durably written to the disk tier.
    pub disk_stores: AtomicU64,
    /// Disk writes that failed or were refused (full disk, oversized).
    pub disk_store_errors: AtomicU64,
    /// Disk entries rejected as corrupt (truncated, bit-flipped, torn,
    /// wrong version, oversized, misnamed) — each fell back to compute.
    pub disk_corrupt: AtomicU64,
    /// Corrupt disk entries successfully moved into `quarantine/`.
    pub disk_quarantined: AtomicU64,
    /// Residual executions requested (the `execute` path), either engine.
    pub executes: AtomicU64,
    /// Residual executions that ended in an evaluation error.
    pub exec_errors: AtomicU64,
    /// Bytecode chunks compiled by the VM for execute requests.
    pub vm_chunks_compiled: AtomicU64,
    /// Execute requests answered from the VM's process-wide chunk cache
    /// (compilation skipped entirely).
    pub vm_chunk_cache_hits: AtomicU64,
    /// Opcodes the VM dispatched across all execute requests.
    pub vm_opcodes_executed: AtomicU64,
    /// Requests that failed with an error.
    pub errors: AtomicU64,
    /// Requests whose responses carried at least one degradation event.
    pub degraded: AtomicU64,
    /// Requests answered under load shedding (the front-end forced
    /// `Degrade` + a tight deadline because the in-flight limit was hit).
    pub shed: AtomicU64,
    /// Connections the TCP front-end accepted over its lifetime.
    pub connections: AtomicU64,
    /// Connections currently open on the TCP front-end (gauge).
    pub connections_active: AtomicU64,
    /// Connections refused because the server was draining.
    pub connections_refused: AtomicU64,
    /// Requests currently executing on the front-end (gauge; the
    /// shed-policy pressure signal).
    pub inflight: AtomicU64,
    /// Requests currently queued or executing (gauge).
    pub queue_depth: AtomicU64,
    /// Total request wall time, microseconds.
    pub wall_micros_total: AtomicU64,
    /// Longest single request, microseconds.
    pub wall_micros_max: AtomicU64,
    /// Per-request wall-time distribution (power-of-two µs buckets).
    pub wall_histogram: Histogram,
}

impl Metrics {
    /// A fresh, zeroed instance.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds one completed request's wall time: the histogram observation
    /// plus the legacy sum/max aggregates (kept so pre-histogram
    /// consumers of the JSON snapshot see an unchanged field set).
    pub fn observe_wall(&self, micros: u64) {
        self.wall_micros_total.fetch_add(micros, Ordering::Relaxed);
        self.wall_micros_max.fetch_max(micros, Ordering::Relaxed);
        self.wall_histogram.observe(micros);
    }

    /// A consistent-enough point-in-time copy (each counter is read
    /// atomically; the set is not a transaction, which is fine for
    /// reporting).
    ///
    /// The `spec_vm_*` and `vm_inlined_calls` fields are read from the
    /// VM's process-wide counters ([`ppe_vm::vm_stats`]) rather than this
    /// instance: the chunk caches they describe are process-global, so a
    /// per-service split would misattribute hits that one service earned
    /// from another's compilations.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let vm = ppe_vm::vm_stats();
        MetricsSnapshot {
            spec_vm_evals: vm.spec_vm_evals,
            spec_vm_chunk_hits: vm.spec_vm_chunk_hits,
            spec_vm_chunk_misses: vm.spec_vm_chunk_misses,
            vm_inlined_calls: vm.vm_inlined_calls,
            requests: r(&self.requests),
            cache_hits: r(&self.cache_hits),
            cache_misses: r(&self.cache_misses),
            dedup_coalesced: r(&self.dedup_coalesced),
            cache_evictions: r(&self.cache_evictions),
            cache_rejected: r(&self.cache_rejected),
            analysis_hits: r(&self.analysis_hits),
            analysis_misses: r(&self.analysis_misses),
            depgraph_analyses: r(&self.depgraph_analyses),
            depgraph_invalidations: r(&self.depgraph_invalidations),
            disk_hits: r(&self.disk_hits),
            disk_misses: r(&self.disk_misses),
            disk_stores: r(&self.disk_stores),
            disk_store_errors: r(&self.disk_store_errors),
            disk_corrupt: r(&self.disk_corrupt),
            disk_quarantined: r(&self.disk_quarantined),
            executes: r(&self.executes),
            exec_errors: r(&self.exec_errors),
            vm_chunks_compiled: r(&self.vm_chunks_compiled),
            vm_chunk_cache_hits: r(&self.vm_chunk_cache_hits),
            vm_opcodes_executed: r(&self.vm_opcodes_executed),
            errors: r(&self.errors),
            degraded: r(&self.degraded),
            shed: r(&self.shed),
            connections: r(&self.connections),
            connections_active: r(&self.connections_active),
            connections_refused: r(&self.connections_refused),
            inflight: r(&self.inflight),
            queue_depth: r(&self.queue_depth),
            wall_micros_total: r(&self.wall_micros_total),
            wall_micros_max: r(&self.wall_micros_max),
            wall_histogram: self.wall_histogram.snapshot(),
        }
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror Metrics, documented there
pub struct MetricsSnapshot {
    pub requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub dedup_coalesced: u64,
    pub cache_evictions: u64,
    pub cache_rejected: u64,
    pub analysis_hits: u64,
    pub analysis_misses: u64,
    pub depgraph_analyses: u64,
    pub depgraph_invalidations: u64,
    pub disk_hits: u64,
    pub disk_misses: u64,
    pub disk_stores: u64,
    pub disk_store_errors: u64,
    pub disk_corrupt: u64,
    pub disk_quarantined: u64,
    pub executes: u64,
    pub exec_errors: u64,
    pub vm_chunks_compiled: u64,
    pub vm_chunk_cache_hits: u64,
    pub vm_opcodes_executed: u64,
    pub spec_vm_evals: u64,
    pub spec_vm_chunk_hits: u64,
    pub spec_vm_chunk_misses: u64,
    pub vm_inlined_calls: u64,
    pub errors: u64,
    pub degraded: u64,
    pub shed: u64,
    pub connections: u64,
    pub connections_active: u64,
    pub connections_refused: u64,
    pub inflight: u64,
    pub queue_depth: u64,
    pub wall_micros_total: u64,
    pub wall_micros_max: u64,
    pub wall_histogram: [u64; WALL_BUCKETS],
}

impl MetricsSnapshot {
    /// Total histogram observations (the histogram's `_count`).
    pub fn wall_observations(&self) -> u64 {
        self.wall_histogram.iter().sum()
    }

    /// A bucket-quantized wall-time quantile in microseconds, clamped to
    /// the observed maximum (the bucket upper bound can overshoot the
    /// true quantile; the max never undershoots it).
    pub fn wall_quantile_us(&self, q: f64) -> u64 {
        histogram_quantile(&self.wall_histogram, q).min(self.wall_micros_max)
    }

    /// Renders the snapshot as one JSON object.
    ///
    /// Every pre-histogram field is preserved byte-for-byte (the shape is
    /// golden-snapshotted); the histogram rides along as `wall_us_histogram`
    /// plus quantized `wall_us_p50`/`wall_us_p99` convenience quantiles.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::num(self.requests)),
            ("cache_hits", Json::num(self.cache_hits)),
            ("cache_misses", Json::num(self.cache_misses)),
            ("dedup_coalesced", Json::num(self.dedup_coalesced)),
            ("cache_evictions", Json::num(self.cache_evictions)),
            ("cache_rejected", Json::num(self.cache_rejected)),
            ("analysis_hits", Json::num(self.analysis_hits)),
            ("analysis_misses", Json::num(self.analysis_misses)),
            ("depgraph_analyses", Json::num(self.depgraph_analyses)),
            (
                "depgraph_invalidations",
                Json::num(self.depgraph_invalidations),
            ),
            ("disk_hits", Json::num(self.disk_hits)),
            ("disk_misses", Json::num(self.disk_misses)),
            ("disk_stores", Json::num(self.disk_stores)),
            ("disk_store_errors", Json::num(self.disk_store_errors)),
            ("disk_corrupt", Json::num(self.disk_corrupt)),
            ("disk_quarantined", Json::num(self.disk_quarantined)),
            ("executes", Json::num(self.executes)),
            ("exec_errors", Json::num(self.exec_errors)),
            ("vm_chunks_compiled", Json::num(self.vm_chunks_compiled)),
            ("vm_chunk_cache_hits", Json::num(self.vm_chunk_cache_hits)),
            ("vm_opcodes_executed", Json::num(self.vm_opcodes_executed)),
            ("spec_vm_evals", Json::num(self.spec_vm_evals)),
            ("spec_vm_chunk_hits", Json::num(self.spec_vm_chunk_hits)),
            ("spec_vm_chunk_misses", Json::num(self.spec_vm_chunk_misses)),
            ("vm_inlined_calls", Json::num(self.vm_inlined_calls)),
            ("errors", Json::num(self.errors)),
            ("degraded", Json::num(self.degraded)),
            ("shed", Json::num(self.shed)),
            ("connections", Json::num(self.connections)),
            ("connections_active", Json::num(self.connections_active)),
            ("connections_refused", Json::num(self.connections_refused)),
            ("inflight", Json::num(self.inflight)),
            ("queue_depth", Json::num(self.queue_depth)),
            ("wall_micros_total", Json::num(self.wall_micros_total)),
            ("wall_micros_max", Json::num(self.wall_micros_max)),
            ("wall_us_p50", Json::num(self.wall_quantile_us(0.50))),
            ("wall_us_p99", Json::num(self.wall_quantile_us(0.99))),
            (
                "wall_us_histogram",
                Json::Arr(self.wall_histogram.iter().map(|&n| Json::num(n)).collect()),
            ),
        ])
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// The output is deterministic: metric families are emitted in
    /// alphabetical order, each with its `# HELP`/`# TYPE` header, and
    /// label sets within a family are in a fixed declaration order. The
    /// label taxonomy is stable: residual-cache traffic is
    /// `ppe_cache_events_total{tier="memory"|"disk",event=…}`, analysis
    /// reuse is `ppe_analysis_cache_total{event=…}`, and request latency
    /// is the `ppe_request_duration_us` histogram (cumulative `le`
    /// buckets in microseconds).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut family = |name: &str, kind: &str, help: &str, series: &[(&str, u64)]| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, value) in series {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        };
        family(
            "ppe_analysis_cache_total",
            "counter",
            "Offline-engine analysis cache events.",
            &[
                ("{event=\"hit\"}", self.analysis_hits),
                ("{event=\"miss\"}", self.analysis_misses),
            ],
        );
        family(
            "ppe_cache_events_total",
            "counter",
            "Residual cache events by tier.",
            &[
                ("{tier=\"memory\",event=\"hit\"}", self.cache_hits),
                ("{tier=\"memory\",event=\"miss\"}", self.cache_misses),
                (
                    "{tier=\"memory\",event=\"coalesced\"}",
                    self.dedup_coalesced,
                ),
                ("{tier=\"memory\",event=\"eviction\"}", self.cache_evictions),
                ("{tier=\"memory\",event=\"rejected\"}", self.cache_rejected),
                ("{tier=\"disk\",event=\"hit\"}", self.disk_hits),
                ("{tier=\"disk\",event=\"miss\"}", self.disk_misses),
                ("{tier=\"disk\",event=\"store\"}", self.disk_stores),
                (
                    "{tier=\"disk\",event=\"store_error\"}",
                    self.disk_store_errors,
                ),
                ("{tier=\"disk\",event=\"corrupt\"}", self.disk_corrupt),
                (
                    "{tier=\"disk\",event=\"quarantined\"}",
                    self.disk_quarantined,
                ),
            ],
        );
        family(
            "ppe_connections_active",
            "gauge",
            "Connections currently open on the TCP front-end.",
            &[("", self.connections_active)],
        );
        family(
            "ppe_connections_refused_total",
            "counter",
            "Connections refused because the server was draining.",
            &[("", self.connections_refused)],
        );
        family(
            "ppe_connections_total",
            "counter",
            "Connections accepted by the TCP front-end.",
            &[("", self.connections)],
        );
        family(
            "ppe_depgraph_analyses_total",
            "counter",
            "Dependency graphs built (one per distinct program source).",
            &[("", self.depgraph_analyses)],
        );
        family(
            "ppe_depgraph_invalidations_total",
            "counter",
            "Definitions whose closure fingerprint changed across an edit.",
            &[("", self.depgraph_invalidations)],
        );
        family(
            "ppe_exec_errors_total",
            "counter",
            "Residual executions that ended in an evaluation error.",
            &[("", self.exec_errors)],
        );
        family(
            "ppe_executes_total",
            "counter",
            "Residual executions requested (either engine).",
            &[("", self.executes)],
        );
        family(
            "ppe_queue_depth",
            "gauge",
            "Requests currently queued or executing.",
            &[("", self.queue_depth)],
        );
        // Histogram family, rendered cumulatively as the format requires.
        {
            let name = "ppe_request_duration_us";
            let _ = writeln!(out, "# HELP {name} Request wall time in microseconds.");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &count) in self.wall_histogram.iter().enumerate() {
                cumulative += count;
                match bucket_le(i) {
                    Some(le) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", self.wall_micros_total);
            let _ = writeln!(out, "{name}_count {}", self.wall_observations());
        }
        let mut family = |name: &str, kind: &str, help: &str, series: &[(&str, u64)]| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, value) in series {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        };
        family(
            "ppe_request_duration_us_max",
            "gauge",
            "Longest single request observed, microseconds.",
            &[("", self.wall_micros_max)],
        );
        family(
            "ppe_requests_degraded_total",
            "counter",
            "Requests whose responses carried a degradation event.",
            &[("", self.degraded)],
        );
        family(
            "ppe_requests_errors_total",
            "counter",
            "Requests that failed with an error.",
            &[("", self.errors)],
        );
        family(
            "ppe_requests_inflight",
            "gauge",
            "Requests currently executing on the front-end.",
            &[("", self.inflight)],
        );
        family(
            "ppe_requests_shed_total",
            "counter",
            "Requests answered under load shedding (forced Degrade).",
            &[("", self.shed)],
        );
        family(
            "ppe_requests_total",
            "counter",
            "Requests accepted, including ones that later failed.",
            &[("", self.requests)],
        );
        family(
            "ppe_spec_vm_chunk_total",
            "counter",
            "Spec-eval VM chunk cache events.",
            &[
                ("{event=\"hit\"}", self.spec_vm_chunk_hits),
                ("{event=\"miss\"}", self.spec_vm_chunk_misses),
            ],
        );
        family(
            "ppe_spec_vm_evals_total",
            "counter",
            "Static subtrees evaluated on the VM during specialization.",
            &[("", self.spec_vm_evals)],
        );
        family(
            "ppe_vm_chunk_cache_hits_total",
            "counter",
            "Execute requests answered from the VM chunk cache.",
            &[("", self.vm_chunk_cache_hits)],
        );
        family(
            "ppe_vm_chunks_compiled_total",
            "counter",
            "Bytecode chunks compiled for execute requests.",
            &[("", self.vm_chunks_compiled)],
        );
        family(
            "ppe_vm_inlined_calls_total",
            "counter",
            "Cross-chunk call targets spliced inline by the compiler.",
            &[("", self.vm_inlined_calls)],
        );
        family(
            "ppe_vm_opcodes_executed_total",
            "counter",
            "Opcodes dispatched by the VM across execute requests.",
            &[("", self.vm_opcodes_executed)],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.observe_wall(10);
        m.observe_wall(40);
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.wall_micros_total, 50);
        assert_eq!(s.wall_micros_max, 40);
        assert_eq!(s.wall_observations(), 2);
        // 10 µs → le=16 (bucket 4); 40 µs → le=64 (bucket 6).
        assert_eq!(s.wall_histogram[4], 1);
        assert_eq!(s.wall_histogram[6], 1);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        // Exact powers of two land in their own bucket (bounds inclusive).
        for i in 0..WALL_BUCKETS - 1 {
            let le = bucket_le(i).unwrap();
            assert_eq!(bucket_index(le), i, "2^{i} must land in bucket {i}");
            assert_eq!(bucket_index(le + 1), i + 1, "2^{i}+1 must overflow it");
        }
        // Past the largest finite bound everything is +Inf.
        assert_eq!(bucket_index(u64::MAX), WALL_BUCKETS - 1);
        assert_eq!(bucket_le(WALL_BUCKETS - 1), None);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut buckets = [0u64; WALL_BUCKETS];
        assert_eq!(histogram_quantile(&buckets, 0.5), 0, "empty histogram");
        buckets[3] = 98; // 98 obs ≤ 8 µs
        buckets[10] = 2; // 2 obs ≤ 1024 µs
        assert_eq!(histogram_quantile(&buckets, 0.50), 8);
        assert_eq!(histogram_quantile(&buckets, 0.98), 8);
        assert_eq!(histogram_quantile(&buckets, 0.99), 1024);
        assert_eq!(histogram_quantile(&buckets, 1.0), 1024);
        let mut inf = [0u64; WALL_BUCKETS];
        inf[WALL_BUCKETS - 1] = 1;
        assert_eq!(histogram_quantile(&inf, 0.5), u64::MAX, "+Inf bucket");
    }

    #[test]
    fn json_quantiles_clamp_to_observed_max() {
        let m = Metrics::new();
        m.observe_wall(3); // bucket le=4, but the true max is 3
        let s = m.snapshot();
        assert_eq!(s.wall_quantile_us(0.5), 3);
        assert_eq!(s.wall_quantile_us(0.99), 3);
    }

    #[test]
    fn snapshot_renders_json() {
        let s = Metrics::new().snapshot();
        let text = s.to_json().render();
        assert!(text.starts_with('{'), "{text}");
        assert!(text.contains("\"cache_hits\":0"), "{text}");
        assert!(text.contains("\"queue_depth\":0"), "{text}");
        assert!(text.contains("\"depgraph_analyses\":0"), "{text}");
        assert!(text.contains("\"depgraph_invalidations\":0"), "{text}");
        assert!(text.contains("\"disk_hits\":0"), "{text}");
        assert!(text.contains("\"disk_corrupt\":0"), "{text}");
        assert!(text.contains("\"disk_quarantined\":0"), "{text}");
        assert!(text.contains("\"executes\":0"), "{text}");
        assert!(text.contains("\"vm_chunks_compiled\":0"), "{text}");
        assert!(text.contains("\"vm_chunk_cache_hits\":0"), "{text}");
        assert!(text.contains("\"vm_opcodes_executed\":0"), "{text}");
        // Process-wide counters: other tests in the same process may have
        // bumped them, so assert presence, not value.
        assert!(text.contains("\"spec_vm_evals\":"), "{text}");
        assert!(text.contains("\"spec_vm_chunk_hits\":"), "{text}");
        assert!(text.contains("\"spec_vm_chunk_misses\":"), "{text}");
        assert!(text.contains("\"vm_inlined_calls\":"), "{text}");
        assert!(text.contains("\"shed\":0"), "{text}");
        assert!(text.contains("\"connections\":0"), "{text}");
        assert!(text.contains("\"inflight\":0"), "{text}");
        assert!(text.contains("\"wall_us_p50\":0"), "{text}");
        assert!(text.contains("\"wall_us_p99\":0"), "{text}");
        assert!(text.contains("\"wall_us_histogram\":[0,0"), "{text}");
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let m = Metrics::new();
        m.observe_wall(1); // bucket 0 (le=1)
        m.observe_wall(2); // bucket 1 (le=2)
        m.observe_wall(1_000_000_000); // +Inf
        let text = m.snapshot().to_prometheus();
        assert!(
            text.contains("ppe_request_duration_us_bucket{le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("ppe_request_duration_us_bucket{le=\"2\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("ppe_request_duration_us_bucket{le=\"1048576\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("ppe_request_duration_us_bucket{le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("ppe_request_duration_us_count 3\n"), "{text}");
        assert!(
            text.contains(&format!(
                "ppe_request_duration_us_sum {}\n",
                1_000_000_003u64
            )),
            "{text}"
        );
    }

    #[test]
    fn prometheus_families_are_alphabetical() {
        let text = Metrics::new().snapshot().to_prometheus();
        let families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split(' ').next())
            .collect();
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted, "families must render alphabetically");
        assert!(!families.is_empty());
    }
}
