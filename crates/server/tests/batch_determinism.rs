//! Cross-engine determinism and degradation isolation for the batch
//! driver: a batch answered by 8 workers must produce exactly the
//! responses the same batch produces serially, and one degraded request
//! must not contaminate its neighbors' reports.

use ppe_server::{
    run_batch, BatchOptions, Engine, ServiceConfig, SpecializeRequest, SpecializeService,
};

/// `(name, source, input spec, facet names)` — a miniature of the
/// workspace's corpus, exercising recursion, mutual recursion, facet
/// refinements, and vector programs.
const CORPUS: &[(&str, &str, &str, &[&str])] = &[
    (
        "power",
        "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
        "_ 3",
        &["sign", "parity"],
    ),
    (
        "sum-to",
        "(define (sum-to x n) (if (= n 0) x (+ x (sum-to x (- n 1)))))",
        "_ 4",
        &["sign"],
    ),
    (
        "gauss",
        "(define (gauss n acc) (if (= n 0) acc (gauss (- n 1) (+ acc n))))",
        "5 0",
        &["range"],
    ),
    (
        "abs-scale",
        "(define (abs-scale x k) (let ((a (if (< x 0) (neg x) x))) (* a k)))",
        "_:sign=pos 3",
        &["sign"],
    ),
    (
        "even-odd",
        "(define (evn n) (if (= n 0) #t (odd (- n 1))))
         (define (odd n) (if (= n 0) #f (evn (- n 1))))",
        "_:parity=even",
        &["parity"],
    ),
    (
        "iprod",
        "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
        "_:size=3 _:size=3",
        &["size"],
    ),
];

fn corpus_requests() -> Vec<SpecializeRequest> {
    let mut requests = Vec::new();
    for engine in [Engine::Online, Engine::Simple, Engine::Offline] {
        for (_, src, inputs, facets) in CORPUS {
            let mut req = SpecializeRequest::new(
                *src,
                inputs.split_whitespace().map(str::to_owned).collect(),
            );
            req.engine = engine;
            req.facets = facets.iter().map(|s| s.to_string()).collect();
            requests.push(req);
        }
    }
    requests
}

/// The canonical comparable form of a response: residual text or error.
fn outcome_text(r: &ppe_server::SpecializeResponse) -> String {
    match &r.outcome {
        Ok(out) => format!("ok:{}", out.residual),
        Err(e) => format!("err:{e}"),
    }
}

#[test]
fn eight_workers_agree_with_one_on_the_whole_corpus() {
    // Repeat the corpus so the parallel run exercises hits and coalescing,
    // not just independent misses.
    let mut requests = corpus_requests();
    requests.extend(corpus_requests());
    let serial: Vec<String> = {
        let service = SpecializeService::new(ServiceConfig::default());
        run_batch(&service, &requests, BatchOptions { jobs: 1 })
            .iter()
            .map(outcome_text)
            .collect()
    };
    let parallel: Vec<String> = {
        let service = SpecializeService::new(ServiceConfig::default());
        run_batch(&service, &requests, BatchOptions { jobs: 8 })
            .iter()
            .map(outcome_text)
            .collect()
    };
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "request {i} diverged between jobs=1 and jobs=8");
    }
}

#[test]
fn a_fuel_tripped_request_degrades_alone() {
    let base = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
    let mut requests = vec![
        SpecializeRequest::new(base, vec!["_".into(), "3".into()]),
        SpecializeRequest::new(base, vec!["_".into(), "9".into()]),
        SpecializeRequest::new(base, vec!["_".into(), "4".into()]),
    ];
    // The middle request runs out of fuel and degrades; its neighbors use
    // the default (ample) budget.
    requests[1].config.fuel = 4;
    requests[1].config.on_exhaustion = ppe_online::ExhaustionPolicy::Degrade;

    let service = SpecializeService::new(ServiceConfig::default());
    let responses = run_batch(&service, &requests, BatchOptions { jobs: 3 });
    assert_eq!(responses.len(), 3);

    let tripped = responses[1].outcome.as_ref().expect("degrade, not fail");
    assert!(
        tripped
            .degradations
            .iter()
            .any(|e| e.budget == ppe_online::Budget::Fuel),
        "fuel trip must appear in the degraded request's own report: {:?}",
        tripped.degradations
    );
    for i in [0, 2] {
        let clean = responses[i].outcome.as_ref().expect("plenty of budget");
        assert!(
            clean.degradations.is_empty(),
            "request {i} must not inherit its neighbor's degradation: {:?}",
            clean.degradations
        );
    }
    assert_eq!(service.metrics().snapshot().degraded, 1);
}

#[test]
fn degraded_entries_replay_their_report_on_hits() {
    let base = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
    let mut req = SpecializeRequest::new(base, vec!["_".into(), "9".into()]);
    req.config.fuel = 4;
    req.config.on_exhaustion = ppe_online::ExhaustionPolicy::Degrade;
    let service = SpecializeService::new(ServiceConfig::default());
    let responses = run_batch(&service, &[req.clone(), req], BatchOptions { jobs: 1 });
    let first = responses[0].outcome.as_ref().unwrap();
    let second = responses[1].outcome.as_ref().unwrap();
    assert!(!first.degradations.is_empty());
    assert_eq!(
        first.degradations.len(),
        second.degradations.len(),
        "a hit on a degraded entry is still a degraded answer"
    );
    assert_eq!(service.metrics().snapshot().degraded, 2);
}
