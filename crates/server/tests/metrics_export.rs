//! Golden-snapshot and property tests for the metrics exporters.
//!
//! The Prometheus text format and the JSON snapshot are consumed by
//! scrapers and scripts outside this repo, so their exact shape is a
//! compatibility surface: field names, label taxonomy, family ordering,
//! and cumulative-bucket semantics must not drift by accident. The
//! golden tests pin the full rendered output for a snapshot whose every
//! field is a distinct value (so a transposed counter shows up as a
//! diff, not a coincidence); the property test drives a live `Metrics`
//! and re-parses the exposition text to check what the format promises:
//! counters only ever go up, buckets are cumulative, `+Inf` equals
//! `_count`.
//!
//! Regenerate the goldens after an intentional format change with:
//! `PPE_BLESS=1 cargo test -p ppe-server --test metrics_export`

use ppe_server::{Metrics, MetricsSnapshot, WALL_BUCKETS};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;

/// A snapshot with every field set to a distinct value, built without
/// touching the process-global VM counters (`Metrics::snapshot` reads
/// those, so a live-instance golden would depend on what other tests in
/// this binary happened to execute).
fn fixed_snapshot() -> MetricsSnapshot {
    let mut s = Metrics::new().snapshot();
    s.requests = 101;
    s.cache_hits = 102;
    s.cache_misses = 103;
    s.dedup_coalesced = 104;
    s.cache_evictions = 105;
    s.cache_rejected = 106;
    s.analysis_hits = 107;
    s.analysis_misses = 108;
    s.depgraph_analyses = 109;
    s.depgraph_invalidations = 110;
    s.disk_hits = 111;
    s.disk_misses = 112;
    s.disk_stores = 113;
    s.disk_store_errors = 114;
    s.disk_corrupt = 115;
    s.disk_quarantined = 116;
    s.executes = 117;
    s.exec_errors = 118;
    s.vm_chunks_compiled = 119;
    s.vm_chunk_cache_hits = 120;
    s.vm_opcodes_executed = 121;
    s.spec_vm_evals = 122;
    s.spec_vm_chunk_hits = 123;
    s.spec_vm_chunk_misses = 124;
    s.vm_inlined_calls = 125;
    s.errors = 126;
    s.degraded = 127;
    s.shed = 128;
    s.connections = 129;
    s.connections_active = 130;
    s.connections_refused = 131;
    s.inflight = 132;
    s.queue_depth = 133;
    s.wall_micros_total = 134_000;
    s.wall_micros_max = 135;
    let mut histogram = [0u64; WALL_BUCKETS];
    for (i, slot) in histogram.iter_mut().enumerate() {
        *slot = (i as u64 + 1) * 3;
    }
    s.wall_histogram = histogram;
    s
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PPE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with PPE_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if intentional, re-bless with \
         PPE_BLESS=1 cargo test -p ppe-server --test metrics_export"
    );
}

#[test]
fn prometheus_text_matches_golden() {
    check_golden("metrics.prom", &fixed_snapshot().to_prometheus());
}

#[test]
fn json_snapshot_matches_golden() {
    let mut rendered = fixed_snapshot().to_json().render();
    rendered.push('\n');
    check_golden("metrics.json", &rendered);
}

/// One parsed exposition: family → type, and series key → value.
struct Exposition {
    types: BTreeMap<String, String>,
    series: BTreeMap<String, u64>,
}

/// Parses the Prometheus text format back into series. Every
/// non-comment line must be `name[{labels}] value` with a `u64` value —
/// the parse itself is part of the test.
fn parse_exposition(text: &str) -> Exposition {
    let mut types = BTreeMap::new();
    let mut series = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line has a kind");
            types.insert(name.to_owned(), kind.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: u64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad sample: {line}"));
        assert!(
            series.insert(key.to_owned(), value).is_none(),
            "duplicate series {key}"
        );
    }
    Exposition { types, series }
}

/// The family a series belongs to: the name up to `{`, with histogram
/// suffixes stripped.
fn family_of(series_key: &str) -> String {
    let name = series_key.split('{').next().unwrap();
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base.to_owned();
        }
    }
    name.to_owned()
}

#[test]
fn counters_are_monotonic_under_load() {
    let metrics = Metrics::new();
    let mut previous: Option<Exposition> = None;
    // Drive the counters through several rounds of uneven traffic,
    // snapshotting between rounds; a counter that ever decreases, or a
    // histogram that loses an observation, fails the scrape-to-scrape
    // comparison a real Prometheus server would be making.
    for round in 0..6u64 {
        for i in 0..=round * 7 {
            metrics.requests.fetch_add(1, Relaxed);
            if i % 3 == 0 {
                metrics.cache_hits.fetch_add(1, Relaxed);
            } else {
                metrics.cache_misses.fetch_add(1, Relaxed);
            }
            if i % 5 == 0 {
                metrics.shed.fetch_add(1, Relaxed);
            }
            metrics.observe_wall(i * 17 % 4096);
        }
        // Gauges may move in both directions; that must not trip the check.
        metrics.inflight.store(round % 3, Relaxed);
        metrics.queue_depth.store((round + 1) % 2, Relaxed);

        let exposition = parse_exposition(&metrics.snapshot().to_prometheus());

        // Within one scrape: buckets are cumulative and +Inf == _count.
        let mut buckets: Vec<(&String, u64)> = exposition
            .series
            .iter()
            .filter(|(k, _)| k.starts_with("ppe_request_duration_us_bucket"))
            .map(|(k, v)| (k, *v))
            .collect();
        // `le` values are powers of two rendered in increasing order by
        // the exporter; sorting samples numerically by `le` reproduces it.
        buckets.sort_by_key(|(k, _)| {
            let le = k.split("le=\"").nth(1).unwrap().trim_end_matches("\"}");
            le.parse::<u64>().unwrap_or(u64::MAX)
        });
        let mut last = 0u64;
        for (key, value) in &buckets {
            assert!(*value >= last, "bucket {key} not cumulative");
            last = *value;
        }
        assert_eq!(
            Some(&last),
            exposition.series.get("ppe_request_duration_us_count"),
            "+Inf bucket must equal _count"
        );

        // Across scrapes: every counter-family series is non-decreasing.
        if let Some(prev) = &previous {
            for (key, value) in &exposition.series {
                let family = family_of(key);
                let is_counter = exposition.types.get(&family).map(String::as_str)
                    == Some("counter")
                    || exposition.types.get(&family).map(String::as_str) == Some("histogram");
                if !is_counter {
                    continue;
                }
                let before = prev
                    .series
                    .get(key)
                    .copied()
                    .unwrap_or_else(|| panic!("series {key} disappeared between scrapes"));
                assert!(
                    *value >= before,
                    "counter {key} went backwards: {before} -> {value}"
                );
            }
        }
        previous = Some(exposition);
    }
}
