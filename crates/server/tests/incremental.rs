//! The incremental re-specialization contract, end to end.
//!
//! Residual cache keys are built from the entry point's *closure
//! fingerprint* (`ppe_analyze::depgraph`), not the whole-program
//! fingerprint, so an edit to a definition the entry cannot reach must
//! keep every cached residual addressable — in the in-memory tier of a
//! live service *and* in the disk tier across a restart — while an edit
//! to a reachable definition must miss and recompute. These tests drive
//! both properties through the real `SpecializeService`, checking the
//! cache dispositions, the `depgraph_*` metrics, and (the part that makes
//! the hits sound) that the residual served from cache is byte-identical
//! to a cold recompute of the edited program.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ppe_server::{
    CacheDisposition, EngineContext, PersistConfig, PersistMode, ServiceConfig, SpecializeRequest,
    SpecializeService,
};

/// `main` reaches `helper`; `orphan` is unreachable from `main`.
const BASE: &str = "(define (main x n) (if (= n 0) 1 (* x (helper x (- n 1)))))\n\
                    (define (helper x n) (if (= n 0) 1 (* x (main x (- n 1)))))\n\
                    (define (orphan q) (+ q 1))";

/// `BASE` with only the unreachable `orphan` edited.
const DEAD_EDIT: &str = "(define (main x n) (if (= n 0) 1 (* x (helper x (- n 1)))))\n\
                         (define (helper x n) (if (= n 0) 1 (* x (main x (- n 1)))))\n\
                         (define (orphan q) (+ q 2))";

/// `BASE` with the reachable `helper` edited (`* x` became `* 2`).
const LIVE_EDIT: &str = "(define (main x n) (if (= n 0) 1 (* x (helper x (- n 1)))))\n\
                         (define (helper x n) (if (= n 0) 1 (* 2 (main x (- n 1)))))\n\
                         (define (orphan q) (+ q 1))";

/// A private scratch directory, removed on drop even when a test fails.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ppe-incr-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn request(program: &str) -> SpecializeRequest {
    SpecializeRequest::new(program, vec!["_".into(), "3".into()])
}

fn disk_service(dir: &Path) -> SpecializeService {
    SpecializeService::new(ServiceConfig {
        persist: Some(PersistConfig {
            mode: PersistMode::ReadWrite,
            ..PersistConfig::new(dir)
        }),
        ..ServiceConfig::default()
    })
}

fn answer(service: &SpecializeService, program: &str) -> (String, CacheDisposition) {
    let mut ctx = EngineContext::new();
    let r = service.handle(&request(program), &mut ctx);
    let out = r.outcome.expect("request succeeds");
    (out.residual, r.disposition)
}

#[test]
fn unreachable_edit_hits_memory_and_preserves_the_residual() {
    let service = SpecializeService::new(ServiceConfig::default());
    let (baseline, first) = answer(&service, BASE);
    assert_eq!(first, CacheDisposition::Miss, "cold start must compute");

    let (edited, disposition) = answer(&service, DEAD_EDIT);
    assert_eq!(
        disposition,
        CacheDisposition::Hit,
        "editing a definition `main` cannot reach must keep the in-memory entry live"
    );
    // The hit is only sound if the cached residual is what a cold run of
    // the edited program would produce.
    let cold = SpecializeService::new(ServiceConfig::default());
    let (reference, _) = answer(&cold, DEAD_EDIT);
    assert_eq!(edited, reference, "cached residual must match a cold run");
    assert_eq!(edited, baseline, "the closure did not change");

    let m = service.metrics().snapshot();
    assert_eq!(m.cache_hits, 1);
    assert_eq!(m.cache_misses, 1);
    assert_eq!(m.depgraph_analyses, 2, "each distinct source is analyzed");
    assert_eq!(
        m.depgraph_invalidations, 1,
        "only `orphan` — the edited definition itself — changed closure \
         fingerprint; `main` and `helper` stayed stable"
    );
}

#[test]
fn unreachable_edit_hits_disk_across_a_restart() {
    let scratch = Scratch::new("dead-edit");

    let warm = disk_service(scratch.path());
    let (baseline, first) = answer(&warm, BASE);
    assert_eq!(first, CacheDisposition::Miss);
    assert_eq!(warm.metrics().snapshot().disk_stores, 1);
    drop(warm);

    // A fresh process image: empty memory tier, same cache directory,
    // *edited* program. The closure fingerprint of `main` is unchanged,
    // so the key still addresses the persisted entry.
    let restarted = disk_service(scratch.path());
    let (edited, disposition) = answer(&restarted, DEAD_EDIT);
    assert_eq!(
        disposition,
        CacheDisposition::Disk,
        "the persisted residual must survive an unreachable edit"
    );
    assert_eq!(edited, baseline, "disk entry served byte-identically");
    let m = restarted.metrics().snapshot();
    // (`cache_misses` still counts the memory-tier miss that preceded the
    // disk probe; the `Disk` disposition above is what proves no
    // recompute happened.)
    assert_eq!(m.disk_hits, 1);
    assert_eq!(m.disk_stores, 0, "nothing new was computed or persisted");
}

#[test]
fn reachable_edit_misses_everywhere_and_recomputes() {
    let scratch = Scratch::new("live-edit");

    let warm = disk_service(scratch.path());
    let (baseline, _) = answer(&warm, BASE);

    // Same live service: the edit to `helper` is reachable from `main`,
    // so the memory tier must not serve the old residual.
    let (edited, disposition) = answer(&warm, LIVE_EDIT);
    assert_eq!(
        disposition,
        CacheDisposition::Miss,
        "a reachable edit must invalidate the in-memory entry"
    );
    assert_ne!(edited, baseline, "the recomputed residual differs");
    let m = warm.metrics().snapshot();
    assert_eq!(
        m.depgraph_invalidations, 2,
        "`main` and `helper` both changed closure fingerprints"
    );
    drop(warm);

    // And across a restart the disk tier must not serve it either.
    let restarted = disk_service(scratch.path());
    let (again, disposition) = answer(&restarted, LIVE_EDIT);
    assert_eq!(
        disposition,
        CacheDisposition::Disk,
        "the *edited* program's own persisted entry is the one that hits"
    );
    assert_eq!(again, edited);
}
