//! Golden snapshots of the cache-key scheme.
//!
//! The disk persistence tier (`persist.rs`) stores residuals under the
//! exact `residual_key` / `analysis_key` values computed here, so *any*
//! change to the key derivation — a reordered field, a new config knob, a
//! different hash tag — silently invalidates every `.ppe` file ever
//! written, turning warm caches cold (or worse: colliding with stale
//! entries if a field stops being hashed). These tests pin the keys for a
//! small fixed corpus end-to-end: program text → parse → dependency
//! graph → closure fingerprint → products → 128-bit key. If one fails,
//! the key scheme drifted; see the assertion message for the required
//! follow-up.

use std::sync::Arc;
use std::time::Duration;

use ppe_analyze::depgraph::DepGraph;
use ppe_core::ProductVal;
use ppe_lang::{parse_program, Symbol};
use ppe_online::{ExhaustionPolicy, PeConfig};
use ppe_server::spec::{build_facets, parse_input};
use ppe_server::{analysis_key, residual_key, CacheKey, Engine};

const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
const SUM_TO: &str = "(define (sum-to n) (if (= n 0) 0 (+ n (sum-to (- n 1)))))";

/// The one place a snapshot failure is explained: a drifted key is not a
/// broken test to update casually — it is an on-disk compatibility break.
fn assert_key(label: &str, actual: CacheKey, expected: &str) {
    if std::env::var_os("PPE_DUMP_KEYS").is_some() {
        println!("SNAPSHOT {label} => {actual}");
        return;
    }
    assert_eq!(
        format!("{actual}"),
        expected,
        "\ncache-key snapshot `{label}` drifted.\n\
         \n\
         The key derivation (crates/server/src/key.rs) no longer produces\n\
         the pinned value. Every entry the disk persistence tier has ever\n\
         written is addressed by these keys, so this change silently\n\
         invalidates all persisted caches — old entries become unreachable\n\
         and, if a component was *removed* from the hash, distinct requests\n\
         can now collide on stale entries.\n\
         \n\
         If the change is intentional you MUST:\n\
         1. bump `persist::FORMAT_VERSION` so old stores are rejected as\n\
            wrong-version instead of half-matching,\n\
         2. bump the hash tags (\"ppe-residual-v2\" / \"ppe-analysis-v2\")\n\
            to the next version,\n\
         3. update DESIGN.md §15 (on-disk format) and §17 (dependency\n\
            fingerprints), and these snapshots.\n"
    );
}

fn program_fingerprint(src: &str) -> u64 {
    Arc::new(parse_program(src).expect("corpus program parses")).fingerprint()
}

/// The entry's transitive-closure fingerprint — the program component of
/// every v2 cache key.
fn closure_fingerprint(src: &str, entry: &str) -> u64 {
    let program = parse_program(src).expect("corpus program parses");
    DepGraph::of_program(&program)
        .closure_fingerprint(Symbol::intern(entry))
        .expect("entry is defined")
}

fn products(specs: &[&str], facets: &[&str]) -> (Vec<String>, Vec<ProductVal>) {
    let names: Vec<String> = facets.iter().map(|s| s.to_string()).collect();
    let set = build_facets(&names).expect("corpus facets build");
    let ps = specs
        .iter()
        .map(|s| {
            parse_input(s)
                .expect("corpus input parses")
                .to_product(&set)
                .expect("corpus input lowers")
        })
        .collect();
    (names, ps)
}

#[test]
fn program_fingerprints_are_stable() {
    // The fingerprint feeds every key below; pin it separately so a
    // fingerprint change is distinguishable from a key-derivation change.
    assert_key(
        "fingerprint(power)",
        CacheKey(u128::from(program_fingerprint(POWER))),
        "0000000000000000623643504dccab9f",
    );
    assert_key(
        "fingerprint(sum-to)",
        CacheKey(u128::from(program_fingerprint(SUM_TO))),
        "0000000000000000bc3f08cd5bd8c750",
    );
}

#[test]
fn closure_fingerprints_are_stable() {
    // The closure fingerprint replaced the whole-program fingerprint as
    // the program component of every key (v2); pin it separately so a
    // depgraph change is distinguishable from a key-derivation change.
    assert_key(
        "closure(power)",
        CacheKey(u128::from(closure_fingerprint(POWER, "power"))),
        "00000000000000000f9937a386432ae1",
    );
    assert_key(
        "closure(sum-to)",
        CacheKey(u128::from(closure_fingerprint(SUM_TO, "sum-to"))),
        "00000000000000008d5b8ca8b8bc559d",
    );
    // The incremental-soundness contract, pinned at the key level:
    // appending a definition the entry cannot reach changes the
    // whole-program fingerprint but not the closure fingerprint.
    let padded = format!("{POWER}\n(define (unrelated q) (+ q 41))");
    assert_ne!(program_fingerprint(POWER), program_fingerprint(&padded));
    assert_eq!(
        closure_fingerprint(POWER, "power"),
        closure_fingerprint(&padded, "power"),
        "unreachable definitions must not perturb the key"
    );
}

#[test]
fn residual_keys_are_stable() {
    let fp = closure_fingerprint(POWER, "power");
    let config = PeConfig::default();

    let (names, ps) = products(&["_", "3"], &[]);
    assert_key(
        "power/online/no-facets",
        residual_key(fp, "power", Engine::Online, &names, &ps, false, &config),
        "d8b70e61f1a7318ac2331e2a0fef130e",
    );
    assert_key(
        "power/online/no-facets/optimize",
        residual_key(fp, "power", Engine::Online, &names, &ps, true, &config),
        "1c303cce89a73190037471aad37306ef",
    );
    assert_key(
        "power/simple/no-facets",
        residual_key(fp, "power", Engine::Simple, &names, &ps, false, &config),
        "3c8e33460f54d763353308fd69938ebf",
    );

    let (names, ps) = products(&["_:sign=pos", "3"], &["sign"]);
    assert_key(
        "power/online/sign-facet",
        residual_key(fp, "power", Engine::Online, &names, &ps, false, &config),
        "a563e1a5388e0ee23883ca9fff535494",
    );
    assert_key(
        "power/offline/sign-facet",
        residual_key(fp, "power", Engine::Offline, &names, &ps, false, &config),
        "9f9e9232d93e4f71afedc3d095c56f46",
    );

    let fp2 = closure_fingerprint(SUM_TO, "sum-to");
    let (names, ps) = products(&["5"], &[]);
    assert_key(
        "sum-to/online/static-input",
        residual_key(fp2, "sum-to", Engine::Online, &names, &ps, false, &config),
        "cd6d14794842de4ec6bf90a73b3573f2",
    );
}

#[test]
fn analysis_keys_are_stable() {
    let fp = closure_fingerprint(POWER, "power");
    let config = PeConfig::default();
    let (names, ps) = products(&["_:sign=pos", "3"], &["sign"]);
    assert_key(
        "power/analysis/sign-facet",
        analysis_key(fp, "power", &names, &ps, &config),
        "c7a5ba6898f7a0a2da1d8cedad961619",
    );
    // The analysis key ignores the optimizer flag by construction; the
    // residual key for the same request must not alias it (different tag).
    let residual = residual_key(fp, "power", Engine::Offline, &names, &ps, false, &config);
    assert_ne!(
        format!("{residual}"),
        format!("{}", analysis_key(fp, "power", &names, &ps, &config)),
        "residual and analysis keys live in separate hash domains"
    );
}

#[test]
fn every_config_knob_reaches_the_key() {
    // Each knob flips the key; pin the variants so adding a knob without
    // hashing it (or silently dropping one) fails loudly.
    let fp = closure_fingerprint(POWER, "power");
    let (names, ps) = products(&["_", "3"], &[]);
    let key = |config: &PeConfig| {
        format!(
            "{}",
            residual_key(fp, "power", Engine::Online, &names, &ps, false, config)
        )
    };

    let base = PeConfig::default();
    let cases: &[(&str, PeConfig, &str)] = &[
        (
            "fuel=1",
            PeConfig {
                fuel: 1,
                ..base.clone()
            },
            "314742962dc2d7d735b584871e352256",
        ),
        (
            "max_unfold_depth=2",
            PeConfig {
                max_unfold_depth: 2,
                ..base.clone()
            },
            "0c1222ffacc0551ebc83be53341576a0",
        ),
        (
            "max_specializations=7",
            PeConfig {
                max_specializations: 7,
                ..base.clone()
            },
            "4a44c6f5edf648fe0f89c7065ad26f29",
        ),
        (
            "max_residual_size=9",
            PeConfig {
                max_residual_size: 9,
                ..base.clone()
            },
            "a2b320a09c391cd603d159da4c7c72d7",
        ),
        (
            "max_recursion_depth=3",
            PeConfig {
                max_recursion_depth: 3,
                ..base.clone()
            },
            "03ad504d971cb814d9cc3214d8bd110d",
        ),
        (
            "deadline=250ms",
            PeConfig {
                deadline: Some(Duration::from_millis(250)),
                ..base.clone()
            },
            "4efb0bbbed2ec142f628a979ea2c6275",
        ),
        (
            "on_exhaustion=degrade",
            PeConfig {
                on_exhaustion: ExhaustionPolicy::Degrade,
                ..base.clone()
            },
            "11bfe1efaab7c2ba85df2eb65689fecf",
        ),
    ];

    let base_key = key(&base);
    for (label, config, expected) in cases {
        let actual = key(config);
        assert_ne!(actual, base_key, "knob `{label}` must separate keys");
        assert_key(
            &format!("power/online/{label}"),
            residual_key(fp, "power", Engine::Online, &names, &ps, false, config),
            expected,
        );
    }
}
