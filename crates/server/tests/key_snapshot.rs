//! Golden snapshots of the cache-key scheme.
//!
//! The disk persistence tier (`persist.rs`) stores residuals under the
//! exact `residual_key` / `analysis_key` values computed here, so *any*
//! change to the key derivation — a reordered field, a new config knob, a
//! different hash tag — silently invalidates every `.ppe` file ever
//! written, turning warm caches cold (or worse: colliding with stale
//! entries if a field stops being hashed). These tests pin the keys for a
//! small fixed corpus end-to-end: program text → parse → fingerprint →
//! products → 128-bit key. If one fails, the key scheme drifted; see the
//! assertion message for the required follow-up.

use std::sync::Arc;
use std::time::Duration;

use ppe_core::ProductVal;
use ppe_lang::parse_program;
use ppe_online::{ExhaustionPolicy, PeConfig};
use ppe_server::spec::{build_facets, parse_input};
use ppe_server::{analysis_key, residual_key, CacheKey, Engine};

const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
const SUM_TO: &str = "(define (sum-to n) (if (= n 0) 0 (+ n (sum-to (- n 1)))))";

/// The one place a snapshot failure is explained: a drifted key is not a
/// broken test to update casually — it is an on-disk compatibility break.
fn assert_key(label: &str, actual: CacheKey, expected: &str) {
    if std::env::var_os("PPE_DUMP_KEYS").is_some() {
        println!("SNAPSHOT {label} => {actual}");
        return;
    }
    assert_eq!(
        format!("{actual}"),
        expected,
        "\ncache-key snapshot `{label}` drifted.\n\
         \n\
         The key derivation (crates/server/src/key.rs) no longer produces\n\
         the pinned value. Every entry the disk persistence tier has ever\n\
         written is addressed by these keys, so this change silently\n\
         invalidates all persisted caches — old entries become unreachable\n\
         and, if a component was *removed* from the hash, distinct requests\n\
         can now collide on stale entries.\n\
         \n\
         If the change is intentional you MUST:\n\
         1. bump `persist::FORMAT_VERSION` so old stores are rejected as\n\
            wrong-version instead of half-matching,\n\
         2. bump the hash tags (\"ppe-residual-v1\" / \"ppe-analysis-v1\")\n\
            to the next version,\n\
         3. update DESIGN.md §15 (on-disk format) and these snapshots.\n"
    );
}

fn program_fingerprint(src: &str) -> u64 {
    Arc::new(parse_program(src).expect("corpus program parses")).fingerprint()
}

fn products(specs: &[&str], facets: &[&str]) -> (Vec<String>, Vec<ProductVal>) {
    let names: Vec<String> = facets.iter().map(|s| s.to_string()).collect();
    let set = build_facets(&names).expect("corpus facets build");
    let ps = specs
        .iter()
        .map(|s| {
            parse_input(s)
                .expect("corpus input parses")
                .to_product(&set)
                .expect("corpus input lowers")
        })
        .collect();
    (names, ps)
}

#[test]
fn program_fingerprints_are_stable() {
    // The fingerprint feeds every key below; pin it separately so a
    // fingerprint change is distinguishable from a key-derivation change.
    assert_key(
        "fingerprint(power)",
        CacheKey(u128::from(program_fingerprint(POWER))),
        "0000000000000000623643504dccab9f",
    );
    assert_key(
        "fingerprint(sum-to)",
        CacheKey(u128::from(program_fingerprint(SUM_TO))),
        "0000000000000000bc3f08cd5bd8c750",
    );
}

#[test]
fn residual_keys_are_stable() {
    let fp = program_fingerprint(POWER);
    let config = PeConfig::default();

    let (names, ps) = products(&["_", "3"], &[]);
    assert_key(
        "power/online/no-facets",
        residual_key(fp, "power", Engine::Online, &names, &ps, false, &config),
        "ec7353e1a226e87ef531e58c63e84dd5",
    );
    assert_key(
        "power/online/no-facets/optimize",
        residual_key(fp, "power", Engine::Online, &names, &ps, true, &config),
        "a8fa25750a26e879b3f0920ba06459f4",
    );
    assert_key(
        "power/simple/no-facets",
        residual_key(fp, "power", Engine::Simple, &names, &ps, false, &config),
        "ef3e1f240e7136b43c85c7404e01f71c",
    );

    let (names, ps) = products(&["_:sign=pos", "3"], &["sign"]);
    assert_key(
        "power/online/sign-facet",
        residual_key(fp, "power", Engine::Online, &names, &ps, false, &config),
        "ed69bc0f247d3a2762e9af957137781b",
    );
    assert_key(
        "power/offline/sign-facet",
        residual_key(fp, "power", Engine::Offline, &names, &ps, false, &config),
        "d592442a6d942b59c67c5e5dc2cba749",
    );

    let fp2 = program_fingerprint(SUM_TO);
    let (names, ps) = products(&["5"], &[]);
    assert_key(
        "sum-to/online/static-input",
        residual_key(fp2, "sum-to", Engine::Online, &names, &ps, false, &config),
        "0732de555e2cbfa786927d4f715cdc35",
    );
}

#[test]
fn analysis_keys_are_stable() {
    let fp = program_fingerprint(POWER);
    let config = PeConfig::default();
    let (names, ps) = products(&["_:sign=pos", "3"], &["sign"]);
    assert_key(
        "power/analysis/sign-facet",
        analysis_key(fp, "power", &names, &ps, &config),
        "ee0b8990dbfa8f4ec5168804c672b1aa",
    );
    // The analysis key ignores the optimizer flag by construction; the
    // residual key for the same request must not alias it (different tag).
    let residual = residual_key(fp, "power", Engine::Offline, &names, &ps, false, &config);
    assert_ne!(
        format!("{residual}"),
        format!("{}", analysis_key(fp, "power", &names, &ps, &config)),
        "residual and analysis keys live in separate hash domains"
    );
}

#[test]
fn every_config_knob_reaches_the_key() {
    // Each knob flips the key; pin the variants so adding a knob without
    // hashing it (or silently dropping one) fails loudly.
    let fp = program_fingerprint(POWER);
    let (names, ps) = products(&["_", "3"], &[]);
    let key = |config: &PeConfig| {
        format!(
            "{}",
            residual_key(fp, "power", Engine::Online, &names, &ps, false, config)
        )
    };

    let base = PeConfig::default();
    let cases: &[(&str, PeConfig, &str)] = &[
        (
            "fuel=1",
            PeConfig {
                fuel: 1,
                ..base.clone()
            },
            "fa87ccf573c6f30d3ea60cb70d91d495",
        ),
        (
            "max_unfold_depth=2",
            PeConfig {
                max_unfold_depth: 2,
                ..base.clone()
            },
            "a7d2196d3e740df967f061e96984bcc3",
        ),
        (
            "max_specializations=7",
            PeConfig {
                max_specializations: 7,
                ..base.clone()
            },
            "0ae6c9f523281cdbf66b72440f90e802",
        ),
        (
            "max_residual_size=9",
            PeConfig {
                max_residual_size: 9,
                ..base.clone()
            },
            "0b4920c734298f01eb9263053e5fb94c",
        ),
        (
            "max_recursion_depth=3",
            PeConfig {
                max_recursion_depth: 3,
                ..base.clone()
            },
            "aa4ef11a3945f3c315978acab21f1b16",
        ),
        (
            "deadline=250ms",
            PeConfig {
                deadline: Some(Duration::from_millis(250)),
                ..base.clone()
            },
            "4464c3971ee1a0088763950313d333ae",
        ),
        (
            "on_exhaustion=degrade",
            PeConfig {
                on_exhaustion: ExhaustionPolicy::Degrade,
                ..base.clone()
            },
            "b36a8053e916574f3185d5001d4d6214",
        ),
    ];

    let base_key = key(&base);
    for (label, config, expected) in cases {
        let actual = key(config);
        assert_ne!(actual, base_key, "knob `{label}` must separate keys");
        assert_key(
            &format!("power/online/{label}"),
            residual_key(fp, "power", Engine::Online, &names, &ps, false, config),
            expected,
        );
    }
}
