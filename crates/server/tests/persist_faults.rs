//! Fault injection against the disk persistence tier.
//!
//! Every test here follows the same contract: populate a cache directory
//! through the real service, mutilate the files the way crashes and bad
//! disks do (truncation, bit flips, torn temp files, version skew,
//! oversized lengths, raw garbage), then point a *fresh* service at the
//! wreckage and demand three things:
//!
//! 1. **No panic, no failed request** — corruption degrades to a cold
//!    compute, never to an error response.
//! 2. **No wrong residual** — every answer matches a persistence-free
//!    reference run byte-for-byte.
//! 3. **Every fault is accounted for** — counted in `Metrics`, summarized
//!    in the tier's `FaultReport`, and (in read-write mode) the offending
//!    file is quarantined so the next run starts clean.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ppe_server::{
    CacheDisposition, EngineContext, FaultKind, PersistConfig, PersistMode, ServiceConfig,
    SpecializeRequest, SpecializeService,
};

const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
const SUM_TO: &str = "(define (sum-to n) (if (= n 0) 0 (+ n (sum-to (- n 1)))))";

// On-disk header offsets (see `persist.rs` and DESIGN.md §15):
// magic 0..8, version 8..12, key 12..28, payload_len 28..36,
// checksum 36..52, payload 52...
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_KEY: usize = 12;
const OFF_LEN: usize = 28;
const OFF_CHECKSUM: usize = 36;
const HEADER_BYTES: usize = 52;

/// A private scratch directory, removed on drop even when a test fails.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ppe-faults-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The request corpus every test replays.
fn corpus() -> Vec<SpecializeRequest> {
    let mut reqs = Vec::new();
    for n in 2..6u64 {
        reqs.push(SpecializeRequest::new(
            POWER,
            vec!["_".into(), n.to_string()],
        ));
    }
    reqs.push(SpecializeRequest::new(SUM_TO, vec!["4".into()]));
    let mut optimized = SpecializeRequest::new(POWER, vec!["_".into(), "3".into()]);
    optimized.optimize = true;
    reqs.push(optimized);
    reqs
}

fn service(dir: &Path, mode: PersistMode) -> SpecializeService {
    SpecializeService::new(ServiceConfig {
        persist: Some(PersistConfig {
            mode,
            ..PersistConfig::new(dir)
        }),
        ..ServiceConfig::default()
    })
}

/// Runs the corpus through `service`, asserting success, and returns the
/// residuals in corpus order.
fn run_corpus(service: &SpecializeService, label: &str) -> Vec<String> {
    let mut ctx = EngineContext::new();
    corpus()
        .iter()
        .map(|req| {
            let r = service.handle(req, &mut ctx);
            r.outcome
                .unwrap_or_else(|e| panic!("{label}: request failed: {e}"))
                .residual
        })
        .collect()
}

/// The ground truth: the corpus run with no persistence at all.
fn reference_residuals() -> Vec<String> {
    let service = SpecializeService::new(ServiceConfig::default());
    run_corpus(&service, "reference")
}

/// Populates `dir` through a real service and returns the entry count.
fn populate(dir: &Path) -> usize {
    let svc = service(dir, PersistMode::ReadWrite);
    assert!(svc.persist_error().is_none(), "{:?}", svc.persist_error());
    let residuals = run_corpus(&svc, "populate");
    assert_eq!(residuals, reference_residuals(), "population run is sound");
    let stores = svc.metrics().snapshot().disk_stores;
    assert!(stores >= residuals.len() as u64, "every miss was stored");
    entry_files(dir).len()
}

/// Committed `.ppe` entry files in `dir`, sorted for determinism.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "ppe"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn quarantine_files(dir: &Path) -> Vec<PathBuf> {
    entry_like(&dir.join("quarantine"))
}

fn entry_like(dir: &Path) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .map(|rd| rd.filter_map(Result::ok).map(|e| e.path()).collect())
        .unwrap_or_default()
}

/// One way of breaking an entry file in place.
struct Mutation {
    name: &'static str,
    /// Fault kinds a load of the broken file may legitimately report.
    expected: &'static [FaultKind],
    apply: fn(&Path),
}

fn rewrite(path: &Path, f: impl FnOnce(&mut Vec<u8>)) {
    let mut bytes = fs::read(path).expect("read entry");
    f(&mut bytes);
    fs::write(path, bytes).expect("rewrite entry");
}

const MUTATIONS: &[Mutation] = &[
    Mutation {
        name: "truncated-mid-payload",
        expected: &[FaultKind::Truncated],
        apply: |p| {
            rewrite(p, |b| {
                b.truncate(HEADER_BYTES + (b.len() - HEADER_BYTES) / 2)
            })
        },
    },
    Mutation {
        name: "truncated-mid-header",
        expected: &[FaultKind::Truncated],
        apply: |p| rewrite(p, |b| b.truncate(HEADER_BYTES / 2)),
    },
    Mutation {
        name: "payload-bit-flip",
        expected: &[FaultKind::ChecksumMismatch],
        apply: |p| {
            rewrite(p, |b| {
                let mid = HEADER_BYTES + (b.len() - HEADER_BYTES) / 2;
                b[mid] ^= 0x10;
            })
        },
    },
    Mutation {
        name: "checksum-bit-flip",
        expected: &[FaultKind::ChecksumMismatch],
        apply: |p| rewrite(p, |b| b[OFF_CHECKSUM + 3] ^= 0x01),
    },
    Mutation {
        name: "bad-magic",
        expected: &[FaultKind::BadMagic],
        apply: |p| rewrite(p, |b| b[OFF_MAGIC] = b'X'),
    },
    Mutation {
        name: "future-format-version",
        expected: &[FaultKind::WrongVersion],
        apply: |p| {
            rewrite(p, |b| {
                b[OFF_VERSION..OFF_VERSION + 4].copy_from_slice(&99u32.to_le_bytes())
            })
        },
    },
    Mutation {
        name: "key-swap",
        expected: &[FaultKind::KeyMismatch],
        apply: |p| rewrite(p, |b| b[OFF_KEY + 7] ^= 0xff),
    },
    Mutation {
        name: "length-larger-than-file",
        expected: &[FaultKind::Truncated, FaultKind::LengthMismatch],
        apply: |p| {
            rewrite(p, |b| {
                let huge = (b.len() as u64) * 4 + 1000;
                b[OFF_LEN..OFF_LEN + 8].copy_from_slice(&huge.to_le_bytes());
            })
        },
    },
    Mutation {
        name: "length-claims-oversized",
        expected: &[FaultKind::Oversized],
        apply: |p| {
            rewrite(p, |b| {
                b[OFF_LEN..OFF_LEN + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
            })
        },
    },
    Mutation {
        name: "trailing-garbage",
        expected: &[FaultKind::LengthMismatch],
        apply: |p| rewrite(p, |b| b.extend_from_slice(b"crash dust")),
    },
    Mutation {
        name: "payload-not-json",
        expected: &[FaultKind::BadPayload, FaultKind::ChecksumMismatch],
        apply: |p| {
            rewrite(p, |b| {
                for byte in &mut b[HEADER_BYTES..] {
                    *byte = b'?';
                }
            })
        },
    },
    Mutation {
        name: "whole-file-garbage",
        expected: &[FaultKind::BadMagic, FaultKind::Truncated],
        apply: |p| {
            let _ = fs::write(p, b"\x00\x01not a cache entry at all");
        },
    },
    Mutation {
        name: "empty-file",
        expected: &[FaultKind::Truncated],
        apply: |p| {
            let _ = fs::write(p, b"");
        },
    },
];

/// The core property, exercised once per mutation kind: every entry in a
/// populated directory is broken the same way, and a fresh service must
/// answer the whole corpus correctly, count every fault, quarantine every
/// broken file, and re-persist the recomputed outcomes.
#[test]
fn every_corruption_degrades_to_cold_compute_and_recovers() {
    let reference = reference_residuals();
    for mutation in MUTATIONS {
        let scratch = Scratch::new(mutation.name);
        let dir = scratch.path();
        let entries = populate(dir);
        assert!(entries > 0, "{}: populated", mutation.name);
        for file in entry_files(dir) {
            (mutation.apply)(&file);
        }

        let svc = service(dir, PersistMode::ReadWrite);
        let residuals = run_corpus(&svc, mutation.name);
        assert_eq!(
            residuals, reference,
            "{}: corruption must never change an answer",
            mutation.name
        );

        let snapshot = svc.metrics().snapshot();
        assert_eq!(
            snapshot.disk_corrupt, entries as u64,
            "{}: every broken entry counted",
            mutation.name
        );
        assert_eq!(
            snapshot.disk_quarantined, entries as u64,
            "{}: every broken entry quarantined",
            mutation.name
        );
        assert_eq!(snapshot.disk_hits, 0, "{}: nothing loadable", mutation.name);

        let report = svc.persist().expect("tier open").fault_report();
        assert_eq!(
            report.total(),
            entries as u64,
            "{}: fault report totals match ({report})",
            mutation.name
        );
        let observed: u64 = mutation.expected.iter().map(|k| report.count(*k)).sum();
        assert_eq!(
            observed, entries as u64,
            "{}: faults classified as one of {:?}, got `{report}`",
            mutation.name, mutation.expected
        );

        // The wreckage moved aside, the recomputed outcomes re-persisted.
        assert_eq!(
            quarantine_files(dir).len(),
            entries,
            "{}: quarantine holds the broken files",
            mutation.name
        );
        let healed = entry_files(dir).len();
        assert_eq!(healed, entries, "{}: cache re-populated", mutation.name);

        // Third run: fully warm again, zero new faults.
        let svc = service(dir, PersistMode::ReadWrite);
        let residuals = run_corpus(&svc, mutation.name);
        assert_eq!(residuals, reference, "{}: healed answers", mutation.name);
        let snapshot = svc.metrics().snapshot();
        assert!(
            snapshot.disk_hits > 0,
            "{}: healed cache warms",
            mutation.name
        );
        assert_eq!(
            snapshot.disk_corrupt, 0,
            "{}: healed cache is clean",
            mutation.name
        );
    }
}

/// Read-only mode on a corrupt directory: faults are counted but nothing
/// on disk moves — no quarantine, no re-store, no deletion.
#[test]
fn read_only_mode_counts_faults_but_never_writes() {
    let scratch = Scratch::new("readonly");
    let dir = scratch.path();
    let entries = populate(dir);
    let before: Vec<PathBuf> = entry_files(dir);
    for file in &before {
        rewrite(file, |b| {
            let mid = HEADER_BYTES + (b.len() - HEADER_BYTES) / 2;
            b[mid] ^= 0x40;
        });
    }
    let mutated: Vec<Vec<u8>> = before.iter().map(|p| fs::read(p).unwrap()).collect();

    let svc = service(dir, PersistMode::ReadOnly);
    let residuals = run_corpus(&svc, "readonly");
    assert_eq!(residuals, reference_residuals());
    let snapshot = svc.metrics().snapshot();
    assert_eq!(snapshot.disk_corrupt, entries as u64);
    assert_eq!(snapshot.disk_quarantined, 0, "read-only never quarantines");
    assert_eq!(snapshot.disk_stores, 0, "read-only never stores");

    assert_eq!(entry_files(dir), before, "no file moved");
    let after: Vec<Vec<u8>> = before.iter().map(|p| fs::read(p).unwrap()).collect();
    assert_eq!(after, mutated, "no file changed");
    assert!(quarantine_files(dir).is_empty());
}

/// Torn temp files — a crash mid-store — must be invisible to loads and
/// swept by gc.
#[test]
fn torn_tmp_files_are_invisible_and_swept() {
    let scratch = Scratch::new("torn");
    let dir = scratch.path();
    let entries = populate(dir);
    // Simulate two crashes at different points of the write protocol.
    fs::write(dir.join("deadbeef.tmp-9999-0"), b"PPECACHE\x01").unwrap();
    fs::write(dir.join("cafebabe.tmp-9999-1"), b"").unwrap();

    let svc = service(dir, PersistMode::ReadWrite);
    let residuals = run_corpus(&svc, "torn");
    assert_eq!(residuals, reference_residuals());
    let snapshot = svc.metrics().snapshot();
    assert_eq!(
        snapshot.disk_hits, entries as u64,
        "torn files hide nothing"
    );
    assert_eq!(snapshot.disk_corrupt, 0, "tmp files are not entries");

    let tier = svc.persist().expect("tier open");
    let stats = tier.stats().expect("stats");
    assert_eq!(stats.tmp_files, 2);
    let report = tier.gc(u64::MAX, false).expect("gc");
    assert_eq!(report.removed_tmp, 2, "gc sweeps torn writes");
    assert_eq!(report.removed_entries, 0, "budget was unlimited");
    assert_eq!(tier.stats().expect("stats").tmp_files, 0);
}

/// Corruption of *some* entries must not poison the rest: good entries
/// still hit, only bad ones are quarantined.
#[test]
fn mixed_good_and_bad_entries_split_cleanly() {
    let scratch = Scratch::new("mixed");
    let dir = scratch.path();
    let entries = populate(dir);
    assert!(entries >= 2, "need a split");
    let files = entry_files(dir);
    let broken = entries / 2;
    for file in files.iter().take(broken) {
        rewrite(file, |b| b.truncate(HEADER_BYTES - 1));
    }

    let svc = service(dir, PersistMode::ReadWrite);
    let residuals = run_corpus(&svc, "mixed");
    assert_eq!(residuals, reference_residuals());
    let snapshot = svc.metrics().snapshot();
    assert_eq!(snapshot.disk_corrupt, broken as u64);
    assert_eq!(snapshot.disk_hits, (entries - broken) as u64);
    assert_eq!(quarantine_files(dir).len(), broken);
}

/// A hostile oversized file (real bytes, not just a lying header) is
/// rejected without ballooning memory and without killing the request.
#[test]
fn oversized_real_payload_is_rejected() {
    let scratch = Scratch::new("oversized");
    let dir = scratch.path();
    let entries = populate(dir);
    assert!(entries > 0);
    // Make every entry physically larger than the configured cap.
    let cap = 4 * 1024;
    for file in entry_files(dir) {
        rewrite(&file, |b| {
            let huge = vec![b'z'; cap * 3];
            b.extend_from_slice(&huge);
        });
    }
    let svc = SpecializeService::new(ServiceConfig {
        persist: Some(PersistConfig {
            max_entry_bytes: cap,
            ..PersistConfig::new(dir)
        }),
        ..ServiceConfig::default()
    });
    let residuals = run_corpus(&svc, "oversized");
    assert_eq!(residuals, reference_residuals());
    let report = svc.persist().expect("tier").fault_report();
    assert_eq!(
        report.count(FaultKind::Oversized),
        entries as u64,
        "{report}"
    );
}

/// Export/import round-trip across directories, plus import resilience:
/// garbage lines in an export stream are rejected without aborting the
/// good ones, and imported entries answer requests.
#[test]
fn export_import_survives_garbage_and_warms_a_fresh_dir() {
    let scratch = Scratch::new("export");
    let dir = scratch.path();
    let entries = populate(dir);
    let svc = service(dir, PersistMode::ReadWrite);
    let tier = svc.persist().expect("tier");

    let mut dump = Vec::new();
    let report = tier.export(&mut dump).expect("export");
    assert_eq!(report.exported, entries as u64);
    assert_eq!(report.skipped, 0);

    // Splice garbage between the good lines.
    let text = String::from_utf8(dump).expect("export is utf-8");
    let mut spliced = String::new();
    for (i, line) in text.lines().enumerate() {
        spliced.push_str(line);
        spliced.push('\n');
        if i == 0 {
            spliced.push_str("{\"entry\":\"nonsense\",\"key\":\"zz\"}\n");
            spliced.push_str("not json at all\n");
        }
    }

    let scratch2 = Scratch::new("import");
    let svc2 = service(scratch2.path(), PersistMode::ReadWrite);
    let tier2 = svc2.persist().expect("tier");
    let report = tier2.import(&mut spliced.as_bytes()).expect("import");
    assert_eq!(report.imported, entries as u64);
    assert_eq!(report.rejected, 2, "both garbage lines rejected");

    // The imported directory answers the corpus warm.
    let svc3 = service(scratch2.path(), PersistMode::ReadWrite);
    let residuals = run_corpus(&svc3, "imported");
    assert_eq!(residuals, reference_residuals());
    assert_eq!(
        svc3.metrics().snapshot().disk_hits,
        entries as u64,
        "every corpus answer came off the imported disk"
    );
}

/// gc under a byte budget keeps the newest entries and the cache still
/// answers correctly afterwards (evicted entries recompute).
#[test]
fn gc_under_budget_keeps_a_working_cache() {
    let scratch = Scratch::new("gc");
    let dir = scratch.path();
    let entries = populate(dir);
    let svc = service(dir, PersistMode::ReadWrite);
    let tier = svc.persist().expect("tier");
    let stats = tier.stats().expect("stats");
    assert_eq!(stats.entries, entries as u64);

    // Budget for roughly half the bytes.
    let report = tier.gc(stats.entry_bytes / 2, false).expect("gc");
    assert!(report.removed_entries > 0, "{report:?}");
    assert!(report.kept_bytes <= stats.entry_bytes / 2, "{report:?}");
    assert_eq!(report.kept_entries + report.removed_entries, entries as u64);

    let svc = service(dir, PersistMode::ReadWrite);
    let residuals = run_corpus(&svc, "post-gc");
    assert_eq!(residuals, reference_residuals());
    let snapshot = svc.metrics().snapshot();
    assert_eq!(snapshot.disk_hits, report.kept_entries);
    assert_eq!(snapshot.disk_corrupt, 0);
}

/// The disposition surfaced to clients distinguishes all three tiers:
/// Miss (cold), Disk (warm from disk), Hit (warm in memory).
#[test]
fn dispositions_name_the_answering_tier() {
    let scratch = Scratch::new("tiers");
    let dir = scratch.path();
    let req = SpecializeRequest::new(POWER, vec!["_".into(), "3".into()]);

    let svc = service(dir, PersistMode::ReadWrite);
    let mut ctx = EngineContext::new();
    assert_eq!(
        svc.handle(&req, &mut ctx).disposition,
        CacheDisposition::Miss
    );
    assert_eq!(
        svc.handle(&req, &mut ctx).disposition,
        CacheDisposition::Hit
    );

    let svc = service(dir, PersistMode::ReadWrite);
    let mut ctx = EngineContext::new();
    assert_eq!(
        svc.handle(&req, &mut ctx).disposition,
        CacheDisposition::Disk
    );
    assert_eq!(
        svc.handle(&req, &mut ctx).disposition,
        CacheDisposition::Hit
    );
}
