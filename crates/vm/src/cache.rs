//! The process-wide chunk cache and VM counters.
//!
//! Compiled programs are keyed by a pair of fingerprints over the entry
//! point's *reachable closure* (`ppe_analyze::depgraph`): the entry's
//! spelling-stable closure fingerprint and an FNV-1a combination of the
//! hash-consed [`Term`] fingerprints of every reachable definition body
//! (the PR-5 interner makes the latter O(1) per already-interned body).
//! Keying on the closure rather than the whole program means editing a
//! definition the entry cannot reach — dead code in a residual, say —
//! keeps the compiled chunks warm. That is sound because execution
//! enters through the entry and can only ever apply functions in its
//! closure ([`crate::chunk::CompiledProgram`] chunks outside it are
//! never dispatched). Two independent 64-bit hashes make an accidental
//! collision in a bounded in-process cache vanishingly unlikely.
//!
//! [`CompiledProgram`]s contain only plain data, so the cache is shared
//! across threads; repeat executions of the same residual — the dominant
//! pattern behind the server's `"execute"` path — skip compilation
//! entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ppe_analyze::depgraph::DepGraph;
use ppe_lang::{term::Term, Expr, FunDef, Program, Symbol};

use crate::chunk::CompiledProgram;
use crate::compile::{self, CompileError};

/// Bound on cached compiled programs; on overflow the cache is cleared
/// wholesale (residual working sets are far smaller, and the in-memory
/// residual LRU upstream already provides fine-grained eviction).
const CACHE_CAP: usize = 256;

static CHUNKS_COMPILED: AtomicU64 = AtomicU64::new(0);
static CHUNK_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static OPS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static SPEC_VM_EVALS: AtomicU64 = AtomicU64::new(0);
static SPEC_VM_CHUNK_HITS: AtomicU64 = AtomicU64::new(0);
static SPEC_VM_CHUNK_MISSES: AtomicU64 = AtomicU64::new(0);
static VM_INLINED_CALLS: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide VM counters, in the mold of
/// [`ppe_lang::interner_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Chunks (function bodies) compiled to bytecode.
    pub chunks_compiled: u64,
    /// Chunk-cache hits (whole programs served without compiling).
    pub chunk_cache_hits: u64,
    /// Bytecode instructions executed.
    pub opcodes_executed: u64,
    /// Static-subtree evaluations requested by the specializer engines
    /// (see [`crate::VmStaticEval`]).
    pub spec_vm_evals: u64,
    /// Specializer static evals answered from a cache: the thread-local
    /// `(chunk, args) → value` result memo, the thread-local chunk map,
    /// or the shared chunk cache.
    pub spec_vm_chunk_hits: u64,
    /// Specializer static-eval chunks compiled fresh.
    pub spec_vm_chunk_misses: u64,
    /// Call sites spliced into their caller during bytecode lowering
    /// (cross-chunk inlining; counted at compile time, so chunk-cache hits
    /// do not re-count them).
    pub vm_inlined_calls: u64,
}

/// Reads the current VM counters.
pub fn vm_stats() -> VmStats {
    VmStats {
        chunks_compiled: CHUNKS_COMPILED.load(Ordering::Relaxed),
        chunk_cache_hits: CHUNK_CACHE_HITS.load(Ordering::Relaxed),
        opcodes_executed: OPS_EXECUTED.load(Ordering::Relaxed),
        spec_vm_evals: SPEC_VM_EVALS.load(Ordering::Relaxed),
        spec_vm_chunk_hits: SPEC_VM_CHUNK_HITS.load(Ordering::Relaxed),
        spec_vm_chunk_misses: SPEC_VM_CHUNK_MISSES.load(Ordering::Relaxed),
        vm_inlined_calls: VM_INLINED_CALLS.load(Ordering::Relaxed),
    }
}

pub(crate) fn add_ops_executed(n: u64) {
    OPS_EXECUTED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn note_spec_eval() {
    SPEC_VM_EVALS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_spec_chunk_hit() {
    SPEC_VM_CHUNK_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_inlined_call() {
    VM_INLINED_CALLS.fetch_add(1, Ordering::Relaxed);
}

type ChunkMap = HashMap<(u64, u64), Arc<CompiledProgram>>;

fn cache() -> &'static Mutex<ChunkMap> {
    static CACHE: OnceLock<Mutex<ChunkMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The cache key: `(closure fingerprint of the entry point, FNV-1a over
/// the Term fingerprints and arities of the entry's reachable bodies)`.
/// Definitions outside the entry's closure cannot be dispatched, so they
/// are deliberately absent from both components.
fn chunk_key(program: &Program) -> (u64, u64) {
    let graph = DepGraph::of_program(program);
    let entry = program.main().name;
    let closure_fp = graph
        .closure_fingerprint(entry)
        .expect("entry is a definition of the same program");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    let reachable = graph.reachable(entry).expect("entry is defined");
    for name in reachable {
        let d = program.lookup(name).expect("reachable names are defined");
        mix(Term::from_expr(&d.body).fingerprint());
        mix(d.params.len() as u64);
    }
    (closure_fp, h)
}

/// Compiles `program` through the process-wide cache.
///
/// Returns the compiled program, whether it was a cache hit, and how many
/// chunks were compiled (0 on a hit) — the latter two feed per-request
/// metrics.
///
/// Caching is keyed on the *entry point's reachable closure*: two
/// programs that agree on everything `main` can reach share an entry
/// even if they differ in unreachable definitions, and a hit may return
/// chunks compiled from the other program. That sharing is sound for
/// execution through [`crate::execute_main`] (the only dispatch paths
/// are inside the closure); callers that invoke non-entry chunks
/// directly must not rely on unreachable chunks matching `program`.
///
/// # Errors
///
/// [`CompileError`] when lowering fails structurally; failures are not
/// cached (they are cheap to rediscover and rare).
pub fn compile_cached(
    program: &Program,
) -> Result<(Arc<CompiledProgram>, bool, u64), CompileError> {
    let key = chunk_key(program);
    if let Some(found) = cache().lock().expect("chunk cache poisoned").get(&key) {
        CHUNK_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok((Arc::clone(found), true, 0));
    }
    let cp = Arc::new(compile::compile(program)?);
    let n_chunks = cp.chunks.len() as u64;
    CHUNKS_COMPILED.fetch_add(n_chunks, Ordering::Relaxed);
    let mut map = cache().lock().expect("chunk cache poisoned");
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&cp));
    Ok((cp, false, n_chunks))
}

/// Namespace tag for specializer static-eval chunks in the shared map: a
/// fixed first key component no real closure fingerprint will collide with
/// in practice (two independent 64-bit spaces; the second component is the
/// subtree's own Term fingerprint, which is content-addressed and therefore
/// stable across runs and safe under wholesale eviction).
const SPEC_MARKER: u64 = 0x5bec_e7a1_57a7_1c00;

/// Compiles a specializer static-eval subtree through the shared chunk
/// cache, keyed by the subtree's [`Term`] fingerprint.
///
/// The subtree is wrapped in a one-definition program whose parameters are
/// the subtree's free variables in first-occurrence order — the calling
/// convention of [`crate::VmStaticEval`]. Returns `None` when lowering
/// fails structurally; failures are not cached (rare, cheap to
/// rediscover).
pub fn spec_chunk(key: u64, body: &Expr, params: &[Symbol]) -> Option<Arc<CompiledProgram>> {
    let map_key = (SPEC_MARKER, key);
    {
        let map = cache().lock().expect("chunk cache poisoned");
        if let Some(found) = map.get(&map_key) {
            SPEC_VM_CHUNK_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(found));
        }
    }
    SPEC_VM_CHUNK_MISSES.fetch_add(1, Ordering::Relaxed);
    let program = Program::new(vec![FunDef::new(
        Symbol::intern("spec_eval_chunk"),
        params.to_vec(),
        body.clone(),
    )])
    .ok()?;
    let cp = Arc::new(compile::compile(&program).ok()?);
    CHUNKS_COMPILED.fetch_add(cp.chunks.len() as u64, Ordering::Relaxed);
    let mut map = cache().lock().expect("chunk cache poisoned");
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(map_key, Arc::clone(&cp));
    Some(cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::parse_program;

    #[test]
    fn repeat_compiles_hit_the_cache() {
        let p = parse_program("(define (cache-probe-fn x) (* x 17))").unwrap();
        let (_, hit0, compiled0) = compile_cached(&p).unwrap();
        // A parallel test may have cleared the cache between our insert and
        // this probe, so assert on the re-parse path, which shares nothing.
        let p2 = parse_program("(define (cache-probe-fn x) (* x 17))").unwrap();
        let (_, hit1, compiled1) = compile_cached(&p2).unwrap();
        if !hit0 {
            assert_eq!(compiled0, 1);
        }
        assert!(hit1, "structurally identical program must hit");
        assert_eq!(compiled1, 0);
    }

    #[test]
    fn different_programs_have_different_keys() {
        let a = parse_program("(define (f x) (+ x 1))").unwrap();
        let b = parse_program("(define (f x) (+ x 2))").unwrap();
        assert_ne!(chunk_key(&a), chunk_key(&b));
    }

    #[test]
    fn unreachable_edits_keep_the_key_stable() {
        let a =
            parse_program("(define (f x) (g x)) (define (g x) (* x 3)) (define (dead x) (+ x 1))")
                .unwrap();
        let b =
            parse_program("(define (f x) (g x)) (define (g x) (* x 3)) (define (dead x) (+ x 99))")
                .unwrap();
        assert_eq!(
            chunk_key(&a),
            chunk_key(&b),
            "editing a def unreachable from the entry must not recompile"
        );
        let c =
            parse_program("(define (f x) (g x)) (define (g x) (* x 4)) (define (dead x) (+ x 1))")
                .unwrap();
        assert_ne!(chunk_key(&a), chunk_key(&c), "reachable edits must miss");
    }
}
