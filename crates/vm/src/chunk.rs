//! Bytecode representation: opcodes, per-function chunks, and whole
//! compiled programs.
//!
//! The design is a register machine with *overlapping call windows* in the
//! style of Lua: every function body is compiled into a [`Chunk`] with a
//! statically known register count, arguments are evaluated into the
//! topmost registers of the caller's window, and a call simply shifts the
//! window base so the arguments become registers `0..n` of the callee —
//! no argument copying, no environment allocation.
//!
//! Everything in a [`CompiledProgram`] is plain data (`Const`s, `Symbol`s,
//! `Expr`s, opcode words), so compiled programs are `Send + Sync` and can
//! be shared process-wide through the fingerprint-keyed chunk cache
//! (see [`crate::cache`]) even though the *runtime* value domain is
//! `Rc`-based and single-threaded.

use std::collections::HashMap;

use ppe_lang::{Const, EvalError, Expr, Prim, Symbol};

/// Packed-operand flag: the operand is a constant-pool index, not a
/// register (see [`Op::Prim1`]).
pub const OPND_CONST: u16 = 0x8000;
/// Packed-operand flag (register operands only): this is the last read of
/// the register, so the VM may *steal* the value (`mem::replace` with nil)
/// instead of cloning it. Stealing is what lets `updvec` see a uniquely
/// referenced vector and update it in place.
pub const OPND_STEAL: u16 = 0x4000;
/// Mask extracting the register index from a packed operand.
pub const OPND_REG_MASK: u16 = 0x3FFF;
/// Largest register index encodable in a packed operand; functions that
/// need more registers fall back to windowed [`Op::Prim`].
pub const OPND_MAX_REG: u16 = 0x3FFF;
/// Largest constant-pool index encodable in a packed operand.
pub const OPND_MAX_CONST: u16 = 0x7FFF;

/// A single bytecode instruction.
///
/// Register operands (`dst`, `src`, `base`, …) are indices into the current
/// call window; `k`, `err`, `func` and `site` index the owning
/// [`CompiledProgram`]'s constant pool, error table, chunk table and
/// lambda-site table respectively. Jump targets are absolute instruction
/// indices within the current chunk.
///
/// Primitive applications come in two shapes. The common one is
/// *three-address* ([`Op::Prim1`]/[`Op::Prim2`]/[`Op::Prim3`]): each
/// operand is a packed `u16` that is either a register (optionally flagged
/// [`OPND_STEAL`] when the compiler proved it is the operand's last read)
/// or a constant-pool index (flagged [`OPND_CONST`]), so a residual term
/// like `(* (vref a 7) (vref b 7))` costs three instructions and zero
/// register shuffling — or just one when the whole depth-two tree fuses
/// into an [`Op::Fused`]. The windowed form ([`Op::Prim`]) remains for the
/// degenerate cases the packed encoding cannot express — statically wrong
/// prim arities (which must still fail at runtime, in evaluation order)
/// and functions so large an operand index would not fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `regs[dst] = consts[k]`.
    Const {
        /// Destination register.
        dst: u16,
        /// Constant-pool index.
        k: u32,
    },
    /// `regs[dst] = FnVal(f)` — a top-level function used as a value.
    LoadFn {
        /// Destination register.
        dst: u16,
        /// The referenced top-level function.
        f: Symbol,
    },
    /// `regs[dst] = regs[src]`.
    Move {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `regs[dst] = prim(opnd(a))` — three-address unary primitive.
    ///
    /// `a` is a packed operand (see [`OPND_CONST`]/[`OPND_STEAL`]);
    /// semantics are exactly [`ppe_lang::Prim::eval`] on the fetched value.
    Prim1 {
        /// The primitive operator.
        prim: Prim,
        /// Destination register.
        dst: u16,
        /// Packed operand.
        a: u16,
    },
    /// `regs[dst] = prim(opnd(a), opnd(b))` — three-address binary
    /// primitive; the workhorse of residual execution.
    Prim2 {
        /// The primitive operator.
        prim: Prim,
        /// Destination register.
        dst: u16,
        /// First packed operand.
        a: u16,
        /// Second packed operand.
        b: u16,
    },
    /// `regs[dst] = prim(opnd(a), opnd(b), opnd(c))` — three-address
    /// ternary primitive (`updvec`). When `a` is a stolen, uniquely
    /// referenced vector the update happens in place — no allocation.
    Prim3 {
        /// The primitive operator.
        prim: Prim,
        /// Destination register.
        dst: u16,
        /// First packed operand (the vector, for `updvec`).
        a: u16,
        /// Second packed operand (the index).
        b: u16,
        /// Third packed operand (the new element).
        c: u16,
    },
    /// `regs[dst] = outer(A, B)` — a fused depth-two expression tree in
    /// one dispatch.
    ///
    /// `A = fa(opnd(a0), opnd(a1))` when `fa` is set, else `A = opnd(a0)`
    /// (and `a1` is unused, encoded 0); symmetrically for `B`. Application
    /// order is `fa`, then `fb`, then `outer`, which is exactly the
    /// oracle's evaluation order for `(outer (fa … …) (fb … …))` — inner
    /// errors surface before outer ones, left before right. Emitted for
    /// residual idioms like `(* (vref a 7) (vref b 7))` (one instruction
    /// instead of three) and, via the emit-time peephole, for steal-chained
    /// pairs like the trailing adds of an unrolled reduction.
    Fused {
        /// The outer (root) primitive; always binary.
        outer: Prim,
        /// Inner primitive of the left subtree, if fused.
        fa: Option<Prim>,
        /// Inner primitive of the right subtree, if fused.
        fb: Option<Prim>,
        /// Destination register.
        dst: u16,
        /// First packed operand of the left subtree (or the left operand
        /// itself when `fa` is `None`).
        a0: u16,
        /// Second packed operand of the left subtree (unused when `fa` is
        /// `None`).
        a1: u16,
        /// First packed operand of the right subtree (or the right operand
        /// itself when `fb` is `None`).
        b0: u16,
        /// Second packed operand of the right subtree (unused when `fb` is
        /// `None`).
        b1: u16,
    },
    /// `regs[dst] = prim(r[0], prim(r[1], … prim(r[n-2], r[n-1])))` where
    /// `r[i] = regs[base+i]` — a right-nested same-operator spine in one
    /// dispatch.
    ///
    /// The compiler evaluates the spine elements of
    /// `(p e1 (p e2 (… (p eN-1 eN))))` into `n` consecutive temporaries in
    /// source order, then this op applies `p` innermost-out — exactly the
    /// oracle's order, so error classification (overflow, NaN, type) is
    /// identical. The temporaries are dead afterwards and are stolen, not
    /// cloned. This is the superinstruction that collapses the trailing
    /// reduction of an unrolled loop (e.g. the 63 adds of a size-64 inner
    /// product) into one instruction.
    FoldChain {
        /// The spine operator; always binary.
        prim: Prim,
        /// Destination register.
        dst: u16,
        /// First spine register.
        base: u16,
        /// Number of spine elements (≥ 2).
        n: u16,
    },
    /// `regs[dst] = prim(regs[base], …, regs[base+n-1])`.
    ///
    /// Arguments sit in consecutive registers, so the primitive is applied
    /// to a register-window slice with no per-call allocation; semantics
    /// are exactly [`ppe_lang::Prim::eval`]. Only used when the
    /// three-address form cannot express the application (wrong static
    /// arity, operand indices out of packed range).
    Prim {
        /// The primitive operator.
        prim: Prim,
        /// Destination register.
        dst: u16,
        /// First argument register.
        base: u16,
        /// Number of arguments.
        n: u16,
    },
    /// Unconditional jump to instruction `to`.
    Jump {
        /// Absolute target instruction index.
        to: u32,
    },
    /// Jump to `to` if `regs[cond]` is `#f`; fall through on `#t`;
    /// any other value is a [`EvalError::NonBoolCondition`].
    JumpIfFalse {
        /// Condition register.
        cond: u16,
        /// Absolute target instruction index.
        to: u32,
    },
    /// Call the statically resolved top-level function `chunks[func]` with
    /// arguments in `regs[base..base+n]`; the result lands in `regs[dst]`.
    ///
    /// Name resolution and arity were checked at compile time; the runtime
    /// still charges fuel and checks the call-depth budget, in the same
    /// order as the AST evaluator's `apply_named`.
    Call {
        /// Chunk index of the callee.
        func: u32,
        /// Destination register.
        dst: u16,
        /// First argument register (= the callee's new window base).
        base: u16,
        /// Number of arguments.
        n: u16,
    },
    /// Apply the function *value* in `regs[f]` (a closure or `FnVal`) to
    /// arguments in `regs[base..base+n]` (always `base == f + 1`).
    CallValue {
        /// Register holding the function value.
        f: u16,
        /// Destination register.
        dst: u16,
        /// First argument register.
        base: u16,
        /// Number of arguments.
        n: u16,
    },
    /// `regs[dst] = closure` for lambda site `site` (captures are read
    /// from the current window per the site's capture list).
    MakeClosure {
        /// Lambda-site index.
        site: u32,
        /// Destination register.
        dst: u16,
    },
    /// Enter a call the compiler spliced into this chunk (cross-chunk
    /// inlining, see [`crate::compile::CompileOptions`]): the instructions
    /// up to the balancing [`Op::LeaveInline`] are the callee's body,
    /// compiled against the argument window the caller just filled.
    ///
    /// The marker charges fuel and checks the call-depth budget *exactly*
    /// as the [`Op::Call`] it replaced would have — name resolution and
    /// arity were compile-time facts for that call too — so budget
    /// accounting and error classification are bit-identical to the
    /// uninlined program; what is saved is the frame push/pop and the
    /// register-file resize.
    EnterInline,
    /// Leave an inlined call body (balances [`Op::EnterInline`]; every
    /// path the compiler emits through an inlined body passes both
    /// markers, so the VM's inline-depth counter stays balanced).
    LeaveInline,
    /// `regs[src] = nil` — drop a binding the compiler proved dead.
    ///
    /// Emitted after a call window is populated from a variable whose last
    /// use was that copy: releasing the binding's own register lets a
    /// callee-side `updvec` on the passed vector see a unique reference
    /// and update in place. Semantically invisible (the register is never
    /// read again).
    Release {
        /// Register to clear.
        src: u16,
    },
    /// Return `regs[src]` to the caller (or finish the run).
    Ret {
        /// Register holding the return value.
        src: u16,
    },
    /// Raise the precomputed error `errors[err]`.
    ///
    /// Used for failures the compiler can prove will occur *if this point
    /// in evaluation order is reached*: unbound variables, calls to unknown
    /// functions, and statically wrong arities. Emitting an instruction —
    /// rather than rejecting at compile time — preserves the AST
    /// evaluator's semantics for errors guarded by conditionals.
    Fail {
        /// Error-table index.
        err: u32,
    },
}

/// The compiled body of one function (a top-level definition or a lambda).
#[derive(Clone, Debug)]
pub struct Chunk {
    /// The instruction stream; execution begins at index 0 and leaves via
    /// [`Op::Ret`] (or an error).
    pub code: Vec<Op>,
    /// Number of registers the chunk needs (parameters + captures +
    /// locals + temporaries).
    pub n_regs: u16,
    /// The function's name (`<lambda>` for lambda chunks); diagnostics only.
    pub name: Symbol,
    /// Number of declared parameters.
    pub arity: u16,
    /// Number of captured variables (lambda chunks only; they occupy
    /// registers `arity..arity+n_captures` on entry).
    pub n_captures: u16,
}

/// One `lambda` occurrence in the source: everything needed to build a
/// [`ppe_lang::Value::Closure`] at runtime and to re-enter its compiled
/// body on application.
#[derive(Clone, Debug)]
pub struct LambdaSite {
    /// Chunk index of the compiled body.
    pub chunk: u32,
    /// Formal parameters of the lambda.
    pub params: Vec<Symbol>,
    /// The original body expression. Each closure creation wraps a fresh
    /// clone in an `Rc`, exactly as the AST evaluator does, so closure
    /// values are indistinguishable from the oracle's.
    pub body: Expr,
    /// In-scope free variables of the lambda, paired with the register (in
    /// the *enclosing* frame, at the creation site) each is captured from.
    /// Free variables that were not in scope at the creation site are not
    /// captured; their occurrences in the body compile to [`Op::Fail`]
    /// with `UnboundVar`, which is when the oracle reports them too.
    pub captures: Vec<(Symbol, u16)>,
}

/// A whole program lowered to bytecode.
///
/// Chunk indices `0..defs.len()` correspond to the program's definitions in
/// order (so the entry function's chunk index equals its definition index);
/// lambda chunks follow.
#[derive(Debug)]
pub struct CompiledProgram {
    /// All chunks: definitions first, then lambdas.
    pub chunks: Vec<Chunk>,
    /// The constant pool (deduplicated literals).
    pub consts: Vec<Const>,
    /// Precomputed errors referenced by [`Op::Fail`].
    pub errors: Vec<EvalError>,
    /// Lambda creation sites referenced by [`Op::MakeClosure`].
    pub lambdas: Vec<LambdaSite>,
    /// Map from definition name to chunk index, for dynamic `FnVal` calls.
    pub by_name: HashMap<Symbol, u32>,
    /// Process-unique id of this compilation, stamped into every closure
    /// the program creates so a closure is only ever re-entered through
    /// the compiled code it was born from.
    pub instance: u64,
}

impl CompiledProgram {
    /// Total number of instructions across all chunks (for diagnostics
    /// and tests).
    pub fn code_len(&self) -> usize {
        self.chunks.iter().map(|c| c.code.len()).sum()
    }
}
