//! [`VmStaticEval`]: the bytecode implementation of the specializer's
//! static-evaluation backend.
//!
//! The engines in `ppe-online`/`ppe-offline` hand over fully-static
//! subtrees (see [`ppe_online::spec_eval`] for the eligibility grammar and
//! the parity contract); this backend lowers each subtree once to a
//! one-definition chunk and replays it on concrete values thereafter.
//! Chunks live in the process-wide chunk cache under the subtree's
//! hash-consed [`ppe_lang::term::Term`] fingerprint, fronted by a
//! thread-local map so the steady-state hit (the same interpreter-loop
//! subterm re-walked once per unfolding) costs one `HashMap` probe and no
//! lock.
//!
//! Failure of any kind — lowering trouble, a runtime error such as
//! division by zero or an out-of-range index, a budget trip inside the
//! replay — answers `None`, and the engine falls back to its tree walk,
//! which re-discovers the outcome with the ordinary classification. The
//! replay budgets below are therefore *backstops* against pathological
//! chunks, not policy: the engines gate on their own [`Governor`] budgets
//! before calling in.
//!
//! [`Governor`]: ppe_online::Governor

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;
use std::sync::Arc;

use ppe_lang::{Expr, Symbol, Value};
use ppe_online::spec_eval::SpecEvalBackend;

use crate::cache;
use crate::chunk::CompiledProgram;
use crate::vm::{Vm, VmOptions};

/// Thread-local chunk-handle cap; on overflow the map is cleared
/// wholesale. Keys are content-addressed fingerprints, so a cleared entry
/// is re-fetched from the shared cache (or recompiled) without any
/// staleness hazard.
const LOCAL_CAP: usize = 512;

/// Thread-local `(chunk, args) → outcome` memo cap; cleared wholesale on
/// overflow. Entries are pure-function results of content-addressed
/// chunks, so eviction is only a performance event. Failures are cached
/// alongside successes: the VM is deterministic under fixed
/// [`REPLAY_OPTS`], so a `(chunk, args)` pair that errored once errors
/// always, and the memo spares the walk a doomed replay per revisit.
const RESULT_CAP: usize = 8192;

/// Hasher for keys that are already fingerprints (or cheap mixes of
/// them): one multiply-xor round instead of SipHash. These maps sit on
/// the per-primitive hot path of the specializer walk, where the default
/// hasher's setup cost is comparable to the whole lookup.
#[derive(Default)]
struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let x = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Fold the high bits down: the table indexes with low bits, and
        // a bare multiply leaves low-entropy inputs (aligned addresses,
        // small ints) clustered there.
        self.0 = x ^ (x >> 32);
    }
}

type BuildFp = BuildHasherDefault<FpHasher>;

/// Mixes concrete arguments into a cache key, or `None` when an argument
/// kind has no cheap identity (closures and function values — which the
/// engines never pass; parameters reify to scalars and vectors only).
///
/// Vectors hash by `Rc` pointer. That is sound *only* because a matching
/// result-cache entry holds clones of its arguments: the clone keeps the
/// allocation alive, so a pointer can never be reused by a different
/// live vector while the entry exists ([`args_match`] re-checks with
/// `Rc::ptr_eq`). Distinct-but-equal vectors simply miss and recompute.
fn args_key(args: &[Value]) -> Option<u64> {
    let mut h = FpHasher(0x9e37_79b9);
    for a in args {
        match a {
            Value::Int(x) => h.write_u64(1 ^ (*x as u64)),
            Value::Bool(b) => h.write_u64(2 ^ u64::from(*b) << 8),
            Value::Float(f) => h.write_u64(3 ^ f.to_bits()),
            Value::Vector(v) => h.write_u64(4 ^ Rc::as_ptr(v) as u64),
            Value::Closure(_) | Value::FnVal(_) => return None,
        }
    }
    Some(h.finish())
}

/// Exact argument comparison for result-cache entries (see [`args_key`]
/// for why pointer equality suffices for vectors).
fn args_match(stored: &[Value], args: &[Value]) -> bool {
    stored.len() == args.len()
        && stored.iter().zip(args).all(|(s, a)| match (s, a) {
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            (Value::Vector(x), Value::Vector(y)) => Rc::ptr_eq(x, y),
            _ => false,
        })
}

/// Replay budgets. Eligible subtrees contain no calls, so an execution
/// uses exactly one application (the entry) and depth 1; the allowances
/// exist only to fail closed if an ineligible chunk ever slipped through.
/// No deadline: a wall-clock probe is a syscall per check, and subtree
/// runtime is bounded by the engines' fuel gate.
const REPLAY_OPTS: VmOptions = VmOptions {
    fuel: 1 << 20,
    max_depth: 64,
    deadline: None,
};

/// Per-thread replay state, bundled so one eval touches thread-local
/// storage once.
/// One `(chunk fingerprint, args fingerprint)` memo entry: the stored
/// arguments (exact-match check, and the vector-liveness guarantee) plus
/// the replay outcome, `None` for a deterministic failure.
type ResultEntry = (Box<[Value]>, Option<Value>);

struct ThreadState {
    chunks: HashMap<u64, Arc<CompiledProgram>, BuildFp>,
    results: HashMap<(u64, u64), ResultEntry, BuildFp>,
    vm: Vm,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState {
        chunks: HashMap::default(),
        results: HashMap::default(),
        vm: Vm::with_options(REPLAY_OPTS),
    });
}

/// The production [`SpecEvalBackend`]: compile-once, replay-many static
/// evaluation on the bytecode VM.
///
/// Stateless and [`Send`]`+`[`Sync`]; all caching is process-global or
/// thread-local, so one instance can be shared by every request. Install
/// it via [`ppe_online::PeConfig::spec_eval`]:
///
/// ```
/// use std::sync::Arc;
/// use ppe_lang::parse_program;
/// use ppe_online::{PeConfig, SimpleInput, SimplePe};
/// use ppe_vm::VmStaticEval;
///
/// let p = parse_program("(define (f x) (+ (* 3 4) x))").unwrap();
/// let config = PeConfig { spec_eval: Some(Arc::new(VmStaticEval)), ..PeConfig::default() };
/// let r = SimplePe::with_config(&p, config)
///     .specialize_main(&[SimpleInput::Dynamic])
///     .unwrap();
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct VmStaticEval;

impl SpecEvalBackend for VmStaticEval {
    fn eval(&self, key: u64, body: &Expr, params: &[Symbol], args: &[Value]) -> Option<Value> {
        cache::note_spec_eval();
        STATE.with(|cell| {
            let st = &mut *cell.borrow_mut();
            // Fastest path: the same subtree on the same concrete
            // arguments. Chunks are content-addressed and the VM is
            // deterministic, so `(key, args) → value` is a pure function;
            // interpreter-style workloads re-derive the same static
            // scalars once per unfolding and once per re-specialization,
            // and those repeats end here.
            let akey = args_key(args);
            if let Some(ak) = akey {
                if let Some((stored, out)) = st.results.get(&(key, ak)) {
                    if args_match(stored, args) {
                        cache::note_spec_chunk_hit();
                        return out.clone();
                    }
                }
            }
            let cp = match st.chunks.get(&key) {
                Some(found) => {
                    cache::note_spec_chunk_hit();
                    Arc::clone(found)
                }
                None => {
                    let cp = cache::spec_chunk(key, body, params)?;
                    if st.chunks.len() >= LOCAL_CAP {
                        st.chunks.clear();
                    }
                    st.chunks.insert(key, Arc::clone(&cp));
                    cp
                }
            };
            let out = st.vm.run_main(&cp, args).ok();
            if let Some(ak) = akey {
                if st.results.len() >= RESULT_CAP {
                    st.results.clear();
                }
                st.results
                    .insert((key, ak), (args.to_vec().into_boxed_slice(), out.clone()));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eligible(src: &str) -> (u64, Expr, Vec<Symbol>) {
        let p = ppe_lang::parse_program(src).unwrap();
        let body = p.main().body.clone();
        let info = ppe_online::spec_eval::analyze(&body).expect("eligible subtree");
        (info.key, body, info.params.clone())
    }

    #[test]
    fn replays_straight_line_arithmetic() {
        let (key, body, params) = eligible("(define (f x) (+ (* x x) 1))");
        let out = VmStaticEval.eval(key, &body, &params, &[Value::Int(7)]);
        assert_eq!(out, Some(Value::Int(50)));
        // Second call is a cache hit and computes on the new argument.
        let out = VmStaticEval.eval(key, &body, &params, &[Value::Int(-2)]);
        assert_eq!(out, Some(Value::Int(5)));
    }

    #[test]
    fn runtime_errors_answer_none() {
        let (key, body, params) = eligible("(define (f x) (/ 1 x))");
        assert_eq!(
            VmStaticEval.eval(key, &body, &params, &[Value::Int(0)]),
            None
        );
        // ...and do not poison the chunk for later, valid arguments.
        assert_eq!(
            VmStaticEval.eval(key, &body, &params, &[Value::Int(2)]),
            Some(Value::Int(0))
        );
    }

    #[test]
    fn vector_parameters_flow_through_vref() {
        let (key, body, params) = eligible("(define (f v i) (vref v (+ i 1)))");
        let v = Value::vector(vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(
            VmStaticEval.eval(key, &body, &params, &[v.clone(), Value::Int(1)]),
            Some(Value::Int(20))
        );
        // Out of range: None, never a panic.
        assert_eq!(
            VmStaticEval.eval(key, &body, &params, &[v, Value::Int(9)]),
            None
        );
    }

    #[test]
    fn counters_advance() {
        let before = cache::vm_stats();
        let (key, body, params) = eligible("(define (f x) (* x 1234567))");
        VmStaticEval.eval(key, &body, &params, &[Value::Int(1)]);
        VmStaticEval.eval(key, &body, &params, &[Value::Int(2)]);
        let after = cache::vm_stats();
        assert!(after.spec_vm_evals >= before.spec_vm_evals + 2);
        assert!(
            after.spec_vm_chunk_hits + after.spec_vm_chunk_misses
                >= before.spec_vm_chunk_hits + before.spec_vm_chunk_misses + 2
        );
    }
}
