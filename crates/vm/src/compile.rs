//! Lowering from the object-language AST to bytecode.
//!
//! Compilation resolves every variable to a register at compile time
//! (innermost binding wins, as in the evaluator's environment), lowers
//! primitives to three-address form (operands read registers or the
//! constant pool directly — see [`crate::chunk::OPND_CONST`]), places
//! call arguments in consecutive registers so calls can use overlapping
//! windows, and turns statically evident failures — unbound variables,
//! unknown functions, wrong arities — into [`Op::Fail`] instructions that
//! fire at exactly the point in evaluation order where the AST evaluator
//! would report them.
//!
//! A lightweight liveness analysis rides along: while compiling any
//! subexpression the compiler keeps a *continuation stack* of expressions
//! that may still evaluate afterwards in this frame. A variable operand
//! that occurs nowhere on that stack (and in no other operand of the same
//! instruction) is marked [`crate::chunk::OPND_STEAL`], letting the VM
//! take the value out of the register instead of cloning it — which in
//! turn is what makes `updvec` on a dead binding an in-place update.
//! The analysis is conservative (it ignores shadowing and looks inside
//! lambda bodies), so a missed steal costs a clone, never correctness.

use std::collections::{HashMap, HashSet};
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};

use ppe_analyze::depgraph::DepGraph;
use ppe_lang::{Const, EvalError, Expr, FunDef, Prim, Program, Symbol};

use crate::cache;
use crate::chunk::{
    Chunk, CompiledProgram, LambdaSite, Op, OPND_CONST, OPND_MAX_CONST, OPND_MAX_REG,
    OPND_REG_MASK, OPND_STEAL,
};

/// Guard on the compiler's own recursion over expression trees, so
/// pathologically nested sources are refused with a structured error
/// instead of overflowing the native stack. The trip point is *static*
/// nesting, checked once at compile time — unlike the evaluator's
/// `DEFAULT_MAX_EXPR_DEPTH`, which counts dynamic `eval` nesting — and is
/// set well below it because compilation happens on whatever thread asked
/// for it, while deep evaluation runs on the workspace's big-stack worker
/// threads. Real residuals nest a few hundred deep at most (see
/// DESIGN.md §16).
pub const MAX_COMPILE_DEPTH: u32 = 10_000;

/// Minimum right-nested spine length lowered to an [`Op::FoldChain`]. A
/// shorter spine of leaves already collapses into one [`Op::Fused`], so
/// the fold superinstruction only pays for itself from four elements up.
const MIN_FOLD_CHAIN: usize = 4;

/// Knobs for bytecode lowering; [`compile`] uses [`CompileOptions::default`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Splice statically resolved calls to small, provably non-recursive
    /// definitions into their caller instead of emitting [`Op::Call`]
    /// (cross-chunk inlining). Semantics — including fuel and call-depth
    /// accounting — are preserved exactly by the
    /// [`Op::EnterInline`]/[`Op::LeaveInline`] markers; see their docs.
    pub enable_inlining: bool,
    /// Largest callee body (in AST nodes) eligible for inlining. Plays the
    /// same role the specializer's `Budget::max_residual_size` plays for
    /// unfolding: a cap on how much code duplication one decision may
    /// cost, just applied at lowering time.
    pub max_inline_size: u64,
    /// How deep inlined bodies may nest inside one chunk (an inlinable
    /// callee's own calls may inline again; a chain `f → g → h` stops
    /// splicing past this many levels and falls back to [`Op::Call`]).
    pub max_inline_depth: u32,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            enable_inlining: true,
            max_inline_size: 48,
            max_inline_depth: 3,
        }
    }
}

/// Size of `e` in AST nodes, or `None` when `e` contains a construct the
/// inliner refuses to splice (`lambda`, first-class application, or a
/// function reference — splicing those would have to replicate the
/// closure-capture protocol inside a foreign frame for no measurable
/// benefit; residual call chains are made of plain calls).
fn inline_body_size(e: &Expr) -> Option<u64> {
    let mut size: u64 = 0;
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        size += 1;
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Lambda(..) | Expr::App(..) | Expr::FnRef(_) => return None,
            Expr::Prim(_, args) => stack.extend(args.iter()),
            Expr::If(c, t, f) => {
                stack.push(c);
                stack.push(t);
                stack.push(f);
            }
            Expr::Call(_, args) => stack.extend(args.iter()),
            Expr::Let(_, bound, body) => {
                stack.push(bound);
                stack.push(body);
            }
        }
    }
    Some(size)
}

/// The definitions callers may splice: first-definition-wins resolvable,
/// provably non-recursive (a singleton SCC of the dependency graph with no
/// self-edge — SCC condensation is what rules out mutual recursion, not
/// just direct self-calls), and with a small, closure-free body.
fn inlinable_defs(program: &Program, opts: CompileOptions) -> HashSet<Symbol> {
    let mut out = HashSet::new();
    if !opts.enable_inlining {
        return out;
    }
    let graph = DepGraph::of_program(program);
    let defs = program.defs();
    let mut seen = HashSet::with_capacity(defs.len());
    for d in defs {
        if !seen.insert(d.name) {
            continue; // shadowed duplicate: calls resolve to the first
        }
        let singleton = defs
            .iter()
            .filter(|o| graph.scc_of(o.name) == graph.scc_of(d.name))
            .count()
            == 1;
        let self_loop = graph.callees(d.name).is_none_or(|cs| cs.contains(&d.name));
        if !singleton || self_loop {
            continue;
        }
        match inline_body_size(&d.body) {
            Some(size) if size <= opts.max_inline_size => {
                out.insert(d.name);
            }
            _ => {}
        }
    }
    out
}

/// Why a program could not be lowered to bytecode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileErrorKind {
    /// Expression nesting exceeded [`MAX_COMPILE_DEPTH`].
    TooDeep,
    /// A single function body needed more than `u16::MAX` registers.
    TooManyRegisters,
    /// More than `u32::MAX` pool entries (practically unreachable).
    PoolOverflow,
}

/// A structured compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// What went wrong.
    pub kind: CompileErrorKind,
    /// The function being compiled when the limit tripped.
    pub function: Symbol,
}

impl CompileError {
    /// The evaluator-error classification of this failure, used when a
    /// compile failure must be reported through the common `EvalError`
    /// channel: nesting limits map to `DepthExceeded` (the oracle's
    /// classification for over-deep expressions), resource overflows to
    /// `Unsupported`.
    pub fn to_eval_error(&self) -> EvalError {
        match self.kind {
            CompileErrorKind::TooDeep => EvalError::DepthExceeded,
            CompileErrorKind::TooManyRegisters => {
                EvalError::Unsupported("function too large to compile (register limit)")
            }
            CompileErrorKind::PoolOverflow => {
                EvalError::Unsupported("program too large to compile (pool limit)")
            }
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            CompileErrorKind::TooDeep => "expression nesting too deep",
            CompileErrorKind::TooManyRegisters => "register limit exceeded",
            CompileErrorKind::PoolOverflow => "constant/error pool overflow",
        };
        write!(f, "cannot compile `{}`: {what}", self.function)
    }
}

impl std::error::Error for CompileError {}

static INSTANCE: AtomicU64 = AtomicU64::new(1);

struct Builder<'p> {
    program: &'p Program,
    opts: CompileOptions,
    inlinable: HashSet<Symbol>,
    chunks: Vec<Chunk>,
    consts: Vec<Const>,
    const_ids: HashMap<Const, u32>,
    errors: Vec<EvalError>,
    lambdas: Vec<LambdaSite>,
    by_name: HashMap<Symbol, u32>,
}

fn placeholder_chunk() -> Chunk {
    Chunk {
        code: Vec::new(),
        n_regs: 0,
        name: Symbol::intern("<pending>"),
        arity: 0,
        n_captures: 0,
    }
}

impl<'p> Builder<'p> {
    fn const_id(&mut self, c: Const) -> u32 {
        if let Some(&k) = self.const_ids.get(&c) {
            return k;
        }
        let k = u32::try_from(self.consts.len()).expect("constant pool overflow");
        self.consts.push(c);
        self.const_ids.insert(c, k);
        k
    }

    fn error_id(&mut self, e: EvalError) -> u32 {
        if let Some(i) = self.errors.iter().position(|x| *x == e) {
            return u32::try_from(i).expect("error pool overflow");
        }
        let i = u32::try_from(self.errors.len()).expect("error pool overflow");
        self.errors.push(e);
        i
    }
}

/// Compiles a whole program to bytecode. Definitions become chunks
/// `0..defs.len()` in order; lambda bodies are appended as they are
/// encountered.
///
/// # Errors
///
/// [`CompileError`] when a structural limit trips (see
/// [`CompileErrorKind`]). Semantic errors (unbound variables, unknown
/// functions, bad arities) do *not* fail compilation — they lower to
/// [`Op::Fail`] so their runtime classification matches the oracle.
///
/// # Examples
///
/// ```
/// use ppe_lang::parse_program;
///
/// let p = parse_program("(define (inc x) (+ x 1))").unwrap();
/// let cp = ppe_vm::compile(&p).unwrap();
/// assert_eq!(cp.chunks.len(), 1);
/// ```
pub fn compile(program: &Program) -> Result<CompiledProgram, CompileError> {
    compile_with(program, CompileOptions::default())
}

/// [`compile`] with explicit [`CompileOptions`] (benchmarks and the
/// differential tests use this to compare inlined and uninlined
/// lowerings of the same program).
///
/// # Errors
///
/// As for [`compile`]. Inlining never introduces failures: a splice that
/// would trip a structural limit is rolled back and the call lowers to a
/// plain [`Op::Call`].
pub fn compile_with(
    program: &Program,
    opts: CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let defs = program.defs();
    let mut by_name = HashMap::with_capacity(defs.len());
    for (i, d) in defs.iter().enumerate() {
        // First definition wins, matching `Program::lookup`.
        by_name
            .entry(d.name)
            .or_insert(u32::try_from(i).expect("too many definitions"));
    }
    let mut b = Builder {
        program,
        opts,
        inlinable: inlinable_defs(program, opts),
        chunks: vec![placeholder_chunk(); defs.len()],
        consts: Vec::new(),
        const_ids: HashMap::new(),
        errors: Vec::new(),
        lambdas: Vec::new(),
        by_name,
    };
    for (i, d) in defs.iter().enumerate() {
        let chunk = compile_fn(&mut b, d.name, &d.params, &[], &d.body)?;
        b.chunks[i] = chunk;
    }
    Ok(CompiledProgram {
        chunks: b.chunks,
        consts: b.consts,
        errors: b.errors,
        lambdas: b.lambdas,
        by_name: b.by_name,
        instance: INSTANCE.fetch_add(1, Ordering::Relaxed),
    })
}

/// Whether symbol `x` occurs in `e` — as a variable, a call target, or a
/// function reference — ignoring shadowing and descending into lambda
/// bodies. A conservative over-approximation of "might still be read",
/// used by the liveness analysis; over-counting only costs a missed
/// steal, never correctness.
fn occurs(x: Symbol, e: &Expr) -> bool {
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match e {
            Expr::Const(_) => {}
            Expr::Var(y) | Expr::FnRef(y) => {
                if *y == x {
                    return true;
                }
            }
            Expr::Prim(_, args) => stack.extend(args.iter()),
            Expr::If(c, t, f) => {
                stack.push(c);
                stack.push(t);
                stack.push(f);
            }
            Expr::Call(name, args) => {
                if *name == x {
                    return true;
                }
                stack.extend(args.iter());
            }
            Expr::Let(_, bound, body) => {
                stack.push(bound);
                stack.push(body);
            }
            Expr::Lambda(_, body) => stack.push(body),
            Expr::App(f, args) => {
                stack.push(f);
                stack.extend(args.iter());
            }
        }
    }
    false
}

/// Compiles one function body (a definition's, or a lambda's with its
/// captured variables appended to the parameter registers).
fn compile_fn<'p>(
    b: &mut Builder<'p>,
    name: Symbol,
    params: &[Symbol],
    captures: &[Symbol],
    body: &'p Expr,
) -> Result<Chunk, CompileError> {
    let mut fc = FnCompiler {
        b,
        name,
        code: Vec::new(),
        scope: Vec::new(),
        cont: Vec::new(),
        next_reg: 0,
        max_reg: 0,
        depth: 0,
        inline_depth: 0,
        fuse_barrier: 0,
    };
    for &p in params.iter().chain(captures) {
        let r = fc.alloc()?;
        fc.scope.push((p, r));
    }
    let ret = fc.alloc()?;
    fc.expr(body, ret)?;
    fc.code.push(Op::Ret { src: ret });
    Ok(Chunk {
        code: fc.code,
        n_regs: fc.max_reg,
        name,
        arity: u16::try_from(params.len()).expect("arity overflow"),
        n_captures: u16::try_from(captures.len()).expect("capture overflow"),
    })
}

struct FnCompiler<'a, 'p> {
    b: &'a mut Builder<'p>,
    name: Symbol,
    code: Vec<Op>,
    /// Lexical scope: `(name, register)`, innermost last.
    scope: Vec<(Symbol, u16)>,
    /// Expressions that may still evaluate *after* the one currently being
    /// compiled, in this frame (let bodies, if branches, sibling operands).
    /// A variable absent from every entry is dead once its current read
    /// completes — the basis for steal flags and `Op::Release`.
    cont: Vec<&'p Expr>,
    next_reg: u16,
    max_reg: u16,
    depth: u32,
    /// How many inlined bodies enclose the expression being compiled
    /// (bounded by [`CompileOptions::max_inline_depth`]).
    inline_depth: u32,
    /// Instructions at indices below this may not participate in peephole
    /// fusion: a jump target lands at (or below) this position, so the
    /// producer/consumer pair would not be adjacent on the jumping path.
    fuse_barrier: usize,
}

impl<'p> FnCompiler<'_, 'p> {
    fn err(&self, kind: CompileErrorKind) -> CompileError {
        CompileError {
            kind,
            function: self.name,
        }
    }

    fn alloc(&mut self) -> Result<u16, CompileError> {
        let r = self.next_reg;
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .ok_or_else(|| self.err(CompileErrorKind::TooManyRegisters))?;
        self.max_reg = self.max_reg.max(self.next_reg);
        Ok(r)
    }

    /// Allocates `n` consecutive registers, returning the first.
    fn alloc_n(&mut self, n: usize) -> Result<u16, CompileError> {
        let n = u16::try_from(n).map_err(|_| self.err(CompileErrorKind::TooManyRegisters))?;
        let base = self.next_reg;
        self.next_reg = self
            .next_reg
            .checked_add(n)
            .ok_or_else(|| self.err(CompileErrorKind::TooManyRegisters))?;
        self.max_reg = self.max_reg.max(self.next_reg);
        Ok(base)
    }

    fn lookup(&self, x: Symbol) -> Option<u16> {
        self.scope
            .iter()
            .rev()
            .find(|(s, _)| *s == x)
            .map(|&(_, r)| r)
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    /// Points the jump at `at` to the next instruction to be emitted.
    fn patch_to_here(&mut self, at: usize) {
        let here = u32::try_from(self.code.len()).expect("code overflow");
        // A jump now lands at this position: ops emitted here may follow a
        // *non-adjacent* predecessor on the jumping path, so they must not
        // fuse backwards.
        self.fuse_barrier = self.code.len();
        match &mut self.code[at] {
            Op::Jump { to } | Op::JumpIfFalse { to, .. } => *to = here,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Whether `x` may still be read after the expression currently being
    /// compiled finishes, within this frame.
    fn is_live_later(&self, x: Symbol) -> bool {
        self.cont.iter().any(|e| occurs(x, e))
    }

    /// Compiles the elements of `args[from..]` into consecutive registers
    /// starting at `base + from`, keeping the not-yet-evaluated siblings
    /// on the continuation stack so steals inside one argument cannot
    /// clear a register a later argument still reads.
    fn fill_window(&mut self, args: &'p [Expr], base: u16) -> Result<(), CompileError> {
        for (i, a) in args.iter().enumerate() {
            let pushed = args.len() - i - 1;
            for later in &args[i + 1..] {
                self.cont.push(later);
            }
            let out = self.expr(a, base + i as u16);
            self.cont.truncate(self.cont.len() - pushed);
            out?;
        }
        Ok(())
    }

    /// After a call window has been fully populated, any variable that was
    /// copied in and is dead afterwards still pins its value from the
    /// binding register for the whole call. Clearing those registers
    /// (`Op::Release`) is semantically invisible and lets a callee-side
    /// `updvec` on the passed vector see a unique reference.
    fn release_dead_window(&mut self, f: Option<&Expr>, args: &[Expr]) {
        let mut released: Vec<u16> = Vec::new();
        for a in f.into_iter().chain(args.iter()) {
            let Expr::Var(x) = a else { continue };
            let Some(reg) = self.lookup(*x) else { continue };
            if released.contains(&reg) || self.is_live_later(*x) {
                continue;
            }
            released.push(reg);
            self.emit(Op::Release { src: reg });
        }
    }

    /// Splices the body of definition `func` in place of a call whose
    /// argument window is already populated at `base` (and whose name and
    /// arity resolution already succeeded). Returns `Ok(false)` when the
    /// callee is not eligible or the splice had to be rolled back.
    ///
    /// The callee's body compiles against a *fresh* scope binding only its
    /// parameters to the window registers — exactly the environment a real
    /// call would run under, so caller bindings can neither be captured nor
    /// stolen by the spliced code. [`Op::EnterInline`]/[`Op::LeaveInline`]
    /// bracket the body so the VM charges fuel and checks depth as the
    /// replaced call would have. A structural limit tripped mid-splice
    /// (nesting, registers) unwinds the emitted code and reports the site
    /// as not inlined — options can therefore never make a program
    /// uncompilable that compiles without them.
    fn try_inline(&mut self, func: u32, base: u16, dst: u16) -> Result<bool, CompileError> {
        let program: &'p Program = self.b.program;
        let def: &'p FunDef = &program.defs()[func as usize];
        if self.inline_depth >= self.b.opts.max_inline_depth
            || !self.b.inlinable.contains(&def.name)
        {
            return Ok(false);
        }
        let code_mark = self.code.len();
        let reg_mark = self.next_reg;
        self.emit(Op::EnterInline);
        let saved_scope = mem::replace(
            &mut self.scope,
            def.params
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, base + i as u16))
                .collect(),
        );
        self.inline_depth += 1;
        let out = self.expr(&def.body, dst);
        self.inline_depth -= 1;
        self.scope = saved_scope;
        match out {
            Ok(()) => {
                self.emit(Op::LeaveInline);
                cache::note_inlined_call();
                Ok(true)
            }
            Err(_) => {
                // Roll back and let the plain-call path lower this site.
                // (The fuse barrier may now sit past the truncation point;
                // that only suppresses peepholes until the code grows back,
                // never soundness.)
                self.code.truncate(code_mark);
                self.next_reg = reg_mark;
                Ok(false)
            }
        }
    }

    /// Whether `e` can be a leaf of an [`Op::Fused`] tree: a constant or
    /// an in-scope variable whose packed encoding fits. (Unbound variables
    /// are excluded — their `Fail` must be emitted at their own place in
    /// evaluation order, which the unfused path handles.)
    fn leaf_ok(&mut self, e: &Expr) -> bool {
        match e {
            Expr::Const(c) => self.b.const_id(*c) <= u32::from(OPND_MAX_CONST),
            Expr::Var(x) => matches!(self.lookup(*x), Some(r) if r <= OPND_MAX_REG),
            _ => false,
        }
    }

    /// Packs one fused-tree leaf, deciding its steal flag against all the
    /// *other* leaves of the same instruction (operand fetch is hoisted, so
    /// a register stolen by one slot must not be read by any other) and
    /// against the continuation.
    fn leaf_word(&mut self, leaves: &[&'p Expr], i: usize) -> u16 {
        match leaves[i] {
            Expr::Const(c) => {
                let k = self.b.const_id(*c);
                OPND_CONST | u16::try_from(k).expect("prechecked const id")
            }
            Expr::Var(x) => {
                let r = self.lookup(*x).expect("prechecked var");
                let dup = leaves
                    .iter()
                    .enumerate()
                    .any(|(j, o)| j != i && matches!(o, Expr::Var(y) if y == x));
                if dup || self.is_live_later(*x) {
                    r
                } else {
                    OPND_STEAL | r
                }
            }
            other => unreachable!("non-leaf in fused tree: {other:?}"),
        }
    }

    fn leaf_words(&mut self, leaves: &[&'p Expr]) -> Vec<u16> {
        (0..leaves.len())
            .map(|i| self.leaf_word(leaves, i))
            .collect()
    }

    /// Lowers a maximal right-nested same-operator spine
    /// `(p e1 (p e2 (… (p eN-1 eN))))` to: the spine elements evaluated
    /// into `N` consecutive temporaries in source order, then one
    /// [`Op::FoldChain`]. This matches the oracle's evaluation order
    /// exactly — a strict evaluator computes every element before any
    /// application, then applies innermost-out — so errors surface at the
    /// same point with the same classification. Only fires for spines of
    /// at least [`MIN_FOLD_CHAIN`] elements; shorter ones lower better
    /// through [`Self::try_fused`] and the emit-time peephole.
    fn try_fold_chain(
        &mut self,
        p: Prim,
        args: &'p [Expr],
        dst: u16,
    ) -> Result<bool, CompileError> {
        let mut spine: Vec<&'p Expr> = vec![&args[0]];
        let mut rest = &args[1];
        while let Expr::Prim(q, qa) = rest {
            if *q != p || qa.len() != 2 {
                break;
            }
            spine.push(&qa[0]);
            rest = &qa[1];
        }
        spine.push(rest);
        let n = spine.len();
        if n < MIN_FOLD_CHAIN {
            return Ok(false);
        }
        // The spine walk is iterative, but it still charges its length
        // against the structural-depth budget the recursive path would
        // have consumed: the accept/reject boundary must not move, so
        // every compilable program stays within the depth envelope the
        // oracle's own dynamic limit was sized against.
        if self.depth + n as u32 >= MAX_COMPILE_DEPTH {
            return Err(self.err(CompileErrorKind::TooDeep));
        }
        let save = self.next_reg;
        let lo = self.alloc_n(n)?;
        for (i, e) in spine.iter().enumerate() {
            let pushed = n - i - 1;
            for later in &spine[i + 1..] {
                self.cont.push(later);
            }
            let out = self.expr(e, lo + i as u16);
            self.cont.truncate(self.cont.len() - pushed);
            out?;
        }
        self.emit(Op::FoldChain {
            prim: p,
            dst,
            base: lo,
            n: u16::try_from(n).expect("checked by alloc_n"),
        });
        self.next_reg = save;
        Ok(true)
    }

    /// Lowers a binary primitive whose operands form a depth-two tree to a
    /// single [`Op::Fused`]. Shapes handled (leaves are constants or
    /// in-scope variables):
    ///
    /// - `(p (q l l) (r l l))` — both subtrees fuse;
    /// - `(p leaf (r l l))` and `(p (q l l) leaf)` — one subtree fuses;
    /// - `(p complex (r l l))` — the left operand evaluates into a
    ///   temporary first (preserving evaluation order), then fuses as a
    ///   direct operand.
    ///
    /// The mirror case `(p (q l l) complex)` must NOT fuse: the left
    /// subtree's primitive application has to run *before* the right
    /// operand evaluates, so it compiles separately (and the emit-time
    /// peephole in [`Self::emit_prim2`] often still collapses the pair).
    /// Returns `Ok(false)` before emitting anything when no shape applies.
    fn try_fused(&mut self, p: Prim, args: &'p [Expr], dst: u16) -> Result<bool, CompileError> {
        fn inner2(e: &Expr) -> Option<(Prim, &[Expr])> {
            match e {
                Expr::Prim(q, qa) if qa.len() == 2 && q.arity() == 2 => Some((*q, &qa[..])),
                _ => None,
            }
        }
        let (e1, e2) = (&args[0], &args[1]);
        let sub_a = match inner2(e1) {
            Some((q, l)) if self.leaf_ok(&l[0]) && self.leaf_ok(&l[1]) => Some((q, l)),
            _ => None,
        };
        let sub_b = match inner2(e2) {
            Some((q, l)) if self.leaf_ok(&l[0]) && self.leaf_ok(&l[1]) => Some((q, l)),
            _ => None,
        };
        match (sub_a, sub_b) {
            (Some((qa, la)), Some((qb, lb))) => {
                let w = self.leaf_words(&[&la[0], &la[1], &lb[0], &lb[1]]);
                self.emit(Op::Fused {
                    outer: p,
                    fa: Some(qa),
                    fb: Some(qb),
                    dst,
                    a0: w[0],
                    a1: w[1],
                    b0: w[2],
                    b1: w[3],
                });
            }
            (Some((qa, la)), None) => {
                if !self.leaf_ok(e2) {
                    // Left-fused, right-complex would reorder the left
                    // subtree's application after the right operand.
                    return Ok(false);
                }
                let w = self.leaf_words(&[&la[0], &la[1], e2]);
                self.emit(Op::Fused {
                    outer: p,
                    fa: Some(qa),
                    fb: None,
                    dst,
                    a0: w[0],
                    a1: w[1],
                    b0: w[2],
                    b1: 0,
                });
            }
            (None, Some((qb, lb))) => {
                if self.leaf_ok(e1) {
                    let w = self.leaf_words(&[e1, &lb[0], &lb[1]]);
                    self.emit(Op::Fused {
                        outer: p,
                        fa: None,
                        fb: Some(qb),
                        dst,
                        a0: w[0],
                        a1: 0,
                        b0: w[1],
                        b1: w[2],
                    });
                } else {
                    // Complex left operand: evaluate it into a temporary
                    // first — its effects (errors, fuel) stay ahead of the
                    // right subtree's application, as the oracle requires.
                    if u32::from(self.next_reg) > u32::from(OPND_MAX_REG) {
                        return Ok(false);
                    }
                    let save = self.next_reg;
                    let t = self.alloc()?;
                    self.cont.push(e2);
                    let out = self.expr(e1, t);
                    self.cont.pop();
                    out?;
                    let w = self.leaf_words(&[&lb[0], &lb[1]]);
                    self.emit(Op::Fused {
                        outer: p,
                        fa: None,
                        fb: Some(qb),
                        dst,
                        a0: OPND_STEAL | t,
                        a1: 0,
                        b0: w[0],
                        b1: w[1],
                    });
                    self.next_reg = save;
                }
            }
            (None, None) => return Ok(false),
        }
        Ok(true)
    }

    /// Emits a binary three-address primitive, first trying to fuse it
    /// with the instruction just emitted: when that instruction is a
    /// [`Op::Prim2`] whose destination this one *steals* (a chained
    /// producer/consumer pair, e.g. the trailing adds of an unrolled
    /// reduction), the pair collapses into one [`Op::Fused`]. Guards: no
    /// jump target may separate the two ([`Self::fuse_barrier`]), and the
    /// surviving operand must neither read nor steal a register the
    /// producer touches (operand fetch is hoisted in the fused form).
    fn emit_prim2(&mut self, p: Prim, dst: u16, wa: u16, wb: u16) {
        let reg_of = |w: u16| (w & OPND_CONST == 0).then_some(w & OPND_REG_MASK);
        let steals = |w: u16| w & OPND_CONST == 0 && w & OPND_STEAL != 0;
        if self.code.len() > self.fuse_barrier {
            if let Some(&Op::Prim2 {
                prim: pi,
                dst: pd,
                a: x,
                b: y,
            }) = self.code.last()
            {
                let steal_of_pd = |w: u16| steals(w) && w & OPND_REG_MASK == pd;
                // The surviving operand must be independent of the
                // producer: not the producer's destination (which the
                // fused op never writes), and not a steal of a register
                // the producer reads (steals are hoisted before reads).
                let safe = |w: u16| {
                    reg_of(w) != Some(pd)
                        && !(steals(w)
                            && (reg_of(x) == Some(w & OPND_REG_MASK)
                                || reg_of(y) == Some(w & OPND_REG_MASK)))
                };
                if steal_of_pd(wb) && !steal_of_pd(wa) && safe(wa) {
                    self.code.pop();
                    self.emit(Op::Fused {
                        outer: p,
                        fa: None,
                        fb: Some(pi),
                        dst,
                        a0: wa,
                        a1: 0,
                        b0: x,
                        b1: y,
                    });
                    return;
                }
                if steal_of_pd(wa) && !steal_of_pd(wb) && safe(wb) {
                    self.code.pop();
                    self.emit(Op::Fused {
                        outer: p,
                        fa: Some(pi),
                        fb: None,
                        dst,
                        a0: x,
                        a1: y,
                        b0: wb,
                        b1: 0,
                    });
                    return;
                }
            }
        }
        self.emit(Op::Prim2 {
            prim: p,
            dst,
            a: wa,
            b: wb,
        });
    }

    /// Lowers a primitive whose static arity matches to three-address
    /// form. Returns `Ok(false)` — before emitting *any* code, so nothing
    /// is ever evaluated twice — when an operand cannot be packed
    /// (register or constant index out of range).
    fn prim_3addr(&mut self, p: Prim, args: &'p [Expr], dst: u16) -> Result<bool, CompileError> {
        let mut n_temps: u16 = 0;
        for a in args {
            let encodable = match a {
                Expr::Const(c) => self.b.const_id(*c) <= u32::from(OPND_MAX_CONST),
                Expr::Var(x) => match self.lookup(*x) {
                    Some(r) => r <= OPND_MAX_REG,
                    None => {
                        // Unbound: compiles to Fail in its own slot, at its
                        // place in evaluation order.
                        n_temps += 1;
                        true
                    }
                },
                _ => {
                    n_temps += 1;
                    true
                }
            };
            if !encodable {
                return Ok(false);
            }
        }
        if u32::from(self.next_reg) + u32::from(n_temps) > u32::from(OPND_MAX_REG) + 1 {
            return Ok(false);
        }

        let save = self.next_reg;
        let mut words = [0u16; 3];
        for (i, a) in args.iter().enumerate() {
            words[i] = match a {
                Expr::Const(c) => {
                    let k = self.b.const_id(*c);
                    OPND_CONST | u16::try_from(k).expect("prechecked const id")
                }
                Expr::Var(x) if self.lookup(*x).is_some() => {
                    let r = self.lookup(*x).expect("matched Some");
                    // Steal only if no *other* operand reads the same
                    // variable at instruction time (operand fetch order is
                    // not evaluation order) and nothing later in the frame
                    // reads it.
                    let dup = args
                        .iter()
                        .enumerate()
                        .any(|(j, o)| j != i && matches!(o, Expr::Var(y) if y == x));
                    if dup || self.is_live_later(*x) {
                        r
                    } else {
                        OPND_STEAL | r
                    }
                }
                _ => {
                    let t = self.alloc()?;
                    let pushed = args.len() - 1;
                    for (j, other) in args.iter().enumerate() {
                        if j != i {
                            self.cont.push(other);
                        }
                    }
                    let out = self.expr(a, t);
                    self.cont.truncate(self.cont.len() - pushed);
                    out?;
                    // Temporaries are dead once the instruction runs.
                    OPND_STEAL | t
                }
            };
        }
        match args.len() {
            1 => self.emit(Op::Prim1 {
                prim: p,
                dst,
                a: words[0],
            }),
            2 => {
                self.emit_prim2(p, dst, words[0], words[1]);
                self.code.len() - 1
            }
            _ => self.emit(Op::Prim3 {
                prim: p,
                dst,
                a: words[0],
                b: words[1],
                c: words[2],
            }),
        };
        self.next_reg = save;
        Ok(true)
    }

    /// The windowed fallback: arguments in consecutive registers,
    /// evaluated left to right, then one [`Op::Prim`]. Handles statically
    /// wrong arities (the runtime arity check reports them in evaluation
    /// order, as the oracle does) and operands out of packed range.
    fn prim_windowed(&mut self, p: Prim, args: &'p [Expr], dst: u16) -> Result<(), CompileError> {
        let save = self.next_reg;
        let base = self.alloc_n(args.len())?;
        self.fill_window(args, base)?;
        let n = u16::try_from(args.len()).expect("checked by alloc_n");
        self.emit(Op::Prim {
            prim: p,
            dst,
            base,
            n,
        });
        self.next_reg = save;
        Ok(())
    }

    /// Compiles `e` so that its value ends up in register `dst`.
    /// `next_reg` is left unchanged (temporaries are stack-disciplined).
    fn expr(&mut self, e: &'p Expr, dst: u16) -> Result<(), CompileError> {
        self.depth += 1;
        if self.depth >= MAX_COMPILE_DEPTH {
            return Err(self.err(CompileErrorKind::TooDeep));
        }
        let out = self.expr_inner(e, dst);
        self.depth -= 1;
        out
    }

    fn expr_inner(&mut self, e: &'p Expr, dst: u16) -> Result<(), CompileError> {
        match e {
            Expr::Const(c) => {
                let k = self.b.const_id(*c);
                self.emit(Op::Const { dst, k });
            }
            Expr::Var(x) => match self.lookup(*x) {
                Some(src) if src == dst => {}
                Some(src) => {
                    self.emit(Op::Move { dst, src });
                }
                None => {
                    let err = self.b.error_id(EvalError::UnboundVar(*x));
                    self.emit(Op::Fail { err });
                }
            },
            Expr::Prim(p, args) => {
                let fits = (1..=3).contains(&args.len()) && args.len() == p.arity();
                if fits && args.len() == 2 && self.try_fold_chain(*p, args, dst)? {
                    // Lowered to spine evaluation plus one fold
                    // superinstruction.
                } else if fits && args.len() == 2 && self.try_fused(*p, args, dst)? {
                    // Lowered to a single fused tree instruction.
                } else if !(fits && self.prim_3addr(*p, args, dst)?) {
                    self.prim_windowed(*p, args, dst)?;
                }
            }
            Expr::If(c, t, f) => {
                let save = self.next_reg;
                let cond = self.alloc()?;
                self.cont.push(t);
                self.cont.push(f);
                let out = self.expr(c, cond);
                self.cont.truncate(self.cont.len() - 2);
                out?;
                self.next_reg = save;
                let jf = self.emit(Op::JumpIfFalse { cond, to: 0 });
                self.expr(t, dst)?;
                let j = self.emit(Op::Jump { to: 0 });
                self.patch_to_here(jf);
                self.expr(f, dst)?;
                self.patch_to_here(j);
            }
            Expr::Call(name, args) => {
                let save = self.next_reg;
                let base = self.alloc_n(args.len())?;
                self.fill_window(args, base)?;
                self.release_dead_window(None, args);
                let n = u16::try_from(args.len()).expect("checked by alloc_n");
                // Resolution failures become runtime `Fail`s at this point
                // in evaluation order: the oracle evaluates arguments
                // first, then reports UnknownFunction/Arity.
                match self.b.by_name.get(name).copied() {
                    Some(func) => {
                        let expected = self.b.program.defs()[func as usize].arity();
                        if expected == args.len() {
                            if !self.try_inline(func, base, dst)? {
                                self.emit(Op::Call { func, dst, base, n });
                            }
                        } else {
                            let err = self.b.error_id(EvalError::Arity {
                                function: *name,
                                expected,
                                got: args.len(),
                            });
                            self.emit(Op::Fail { err });
                        }
                    }
                    None => {
                        let err = self.b.error_id(EvalError::UnknownFunction(*name));
                        self.emit(Op::Fail { err });
                    }
                }
                self.next_reg = save;
            }
            Expr::Let(x, bound, body) => {
                let slot = self.alloc()?;
                self.cont.push(body);
                let out = self.expr(bound, slot);
                self.cont.pop();
                out?;
                self.scope.push((*x, slot));
                let out = self.expr(body, dst);
                self.scope.pop();
                out?;
                self.next_reg = slot;
            }
            Expr::Lambda(params, body) => {
                let mut fv = Vec::new();
                e.free_vars(&mut fv);
                let captures: Vec<(Symbol, u16)> = fv
                    .into_iter()
                    .filter_map(|x| self.lookup(x).map(|r| (x, r)))
                    .collect();
                let site = compile_lambda(self.b, params, body, captures)?;
                self.emit(Op::MakeClosure { site, dst });
            }
            Expr::FnRef(f) => {
                self.emit(Op::LoadFn { dst, f: *f });
            }
            Expr::App(f, args) => {
                let save = self.next_reg;
                let freg = self.alloc()?;
                for a in args.iter() {
                    self.cont.push(a);
                }
                let out = self.expr(f, freg);
                self.cont.truncate(self.cont.len() - args.len());
                out?;
                let base = self.alloc_n(args.len())?;
                debug_assert_eq!(base, freg + 1);
                self.fill_window(args, base)?;
                self.release_dead_window(Some(f), args);
                let n = u16::try_from(args.len()).expect("checked by alloc_n");
                self.emit(Op::CallValue {
                    f: freg,
                    dst,
                    base,
                    n,
                });
                self.next_reg = save;
            }
        }
        Ok(())
    }
}

fn compile_lambda<'p>(
    b: &mut Builder<'p>,
    params: &[Symbol],
    body: &'p Expr,
    captures: Vec<(Symbol, u16)>,
) -> Result<u32, CompileError> {
    let chunk_id = u32::try_from(b.chunks.len()).expect("too many chunks");
    b.chunks.push(placeholder_chunk());
    let capture_syms: Vec<Symbol> = captures.iter().map(|&(s, _)| s).collect();
    let chunk = compile_fn(b, Symbol::intern("<lambda>"), params, &capture_syms, body)?;
    b.chunks[chunk_id as usize] = chunk;
    let site = u32::try_from(b.lambdas.len()).expect("too many lambdas");
    b.lambdas.push(LambdaSite {
        chunk: chunk_id,
        params: params.to_vec(),
        body: body.clone(),
        captures,
    });
    Ok(site)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vm;
    use ppe_lang::{parse_program, Value};

    #[test]
    fn constants_are_pooled_once() {
        let p = parse_program("(define (f x) (+ (+ x 1) (+ x 1)))").unwrap();
        let cp = compile(&p).unwrap();
        assert_eq!(cp.consts, vec![Const::Int(1)]);
    }

    #[test]
    fn unknown_function_compiles_to_fail_not_error() {
        // The parser validates call targets, so build the ill-formed
        // program directly — `Program::new` admits it, as the oracle does.
        let p = ppe_lang::Program::new(vec![ppe_lang::FunDef::new(
            Symbol::intern("f"),
            vec![Symbol::intern("x")],
            Expr::call("mystery", vec![Expr::var("x")]),
        )])
        .unwrap();
        let cp = compile(&p).unwrap();
        assert!(cp
            .errors
            .iter()
            .any(|e| matches!(e, EvalError::UnknownFunction(_))));
    }

    #[test]
    fn lambda_captures_in_scope_variables_only() {
        let p = parse_program("(define (f x) (let ((k 2)) (lambda (y) (+ (* k x) y))))").unwrap();
        let cp = compile(&p).unwrap();
        assert_eq!(cp.lambdas.len(), 1);
        let caps: Vec<&str> = cp.lambdas[0]
            .captures
            .iter()
            .map(|&(s, _)| s.as_str())
            .collect();
        assert_eq!(caps.len(), 2);
        assert!(caps.contains(&"k") && caps.contains(&"x"));
    }

    #[test]
    fn deep_nesting_is_rejected_structurally() {
        // Alternating operators so the chain flattener cannot linearize
        // the spine; the recursive compiler must hit its depth guard.
        let mut src = String::from("(define (f x) ");
        let depth = 12_000;
        for i in 0..depth {
            src.push_str(if i % 2 == 0 { "(+ 1 " } else { "(- 1 " });
        }
        src.push('x');
        for _ in 0..depth {
            src.push(')');
        }
        src.push(')');
        let p = parse_program(&src).unwrap();
        let err = compile(&p).unwrap_err();
        assert_eq!(err.kind, CompileErrorKind::TooDeep);
    }

    #[test]
    fn same_operator_chain_compiles_to_one_fold() {
        // A right-nested same-operator spine flattens into temporaries
        // plus a single FoldChain superinstruction — and the flattener
        // still charges the spine length against the depth budget, so the
        // accept/reject boundary is where it always was.
        let depth = 9_000;
        let mut src = String::from("(define (f x) ");
        for _ in 0..depth {
            src.push_str("(+ 1 ");
        }
        src.push('x');
        for _ in 0..depth {
            src.push(')');
        }
        src.push(')');
        let p = parse_program(&src).unwrap();
        let cp = compile(&p).unwrap();
        let folds = cp.chunks[0]
            .code
            .iter()
            .filter(|op| matches!(op, Op::FoldChain { .. }))
            .count();
        assert_eq!(folds, 1);
        let out = Vm::new().run_main(&cp, &[Value::Int(5)]).unwrap();
        assert_eq!(out, Value::Int(5 + depth as i64));

        let mut too_deep = String::from("(define (f x) ");
        for _ in 0..12_000 {
            too_deep.push_str("(+ 1 ");
        }
        too_deep.push('x');
        for _ in 0..12_000 {
            too_deep.push(')');
        }
        too_deep.push(')');
        let p = parse_program(&too_deep).unwrap();
        assert_eq!(compile(&p).unwrap_err().kind, CompileErrorKind::TooDeep);
    }
}
