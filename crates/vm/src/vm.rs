//! The dispatch loop: explicit call frames over a shared register stack.
//!
//! Budget semantics mirror [`ppe_lang::Evaluator`] exactly so the AST
//! evaluator can serve as a differential oracle:
//!
//! - **fuel** is charged once per function application (named call,
//!   closure application, or `FnVal` application), after the arity check
//!   and before the depth check — [`EvalError::OutOfFuel`];
//! - **call depth** counts nested, unreturned applications including the
//!   entry call, bounded by `max_depth` — [`EvalError::DepthExceeded`];
//! - the **wall-clock deadline**, if set, is checked every 1024 executed
//!   instructions — [`EvalError::DeadlineExceeded`]. (The oracle checks
//!   every 1024 expression nodes; the cadence differs by a constant
//!   factor, the classification does not.)

use std::mem;
use std::rc::Rc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use ppe_lang::{
    Const, Env, EvalError, Prim, Program, Symbol, Value, DEFAULT_FUEL, DEFAULT_MAX_DEPTH,
};
use ppe_online::Governor;

use crate::cache::{self, compile_cached};
use crate::chunk::{Chunk, CompiledProgram, Op, OPND_CONST, OPND_REG_MASK, OPND_STEAL};

/// How often the wall clock is consulted when a deadline is set: every
/// 1024 executed instructions.
const DEADLINE_CHECK_MASK: u64 = 0x3FF;

/// Placeholder for registers that have not been written yet.
fn nil() -> Value {
    Value::Bool(false)
}

/// Phase one of packed-operand fetch: materialize constants and *steal*
/// last-use registers (`mem::replace` with nil) into an owned slot. Plain
/// register operands return `None` and are read by reference in phase two
/// ([`opnd`]), after all mutation is done.
#[inline(always)]
fn fetch_owned(regs: &mut [Value], base: usize, consts: &[Const], w: u16) -> Option<Value> {
    if w & OPND_CONST != 0 {
        Some(Value::from_const(consts[usize::from(w & !OPND_CONST)]))
    } else if w & OPND_STEAL != 0 {
        Some(std::mem::replace(
            &mut regs[base + usize::from(w & OPND_REG_MASK)],
            nil(),
        ))
    } else {
        None
    }
}

/// Phase two: a borrowed view of the operand, from the owned slot or the
/// register file.
#[inline(always)]
fn opnd<'a>(slot: &'a Option<Value>, regs: &'a [Value], base: usize, w: u16) -> &'a Value {
    match slot {
        Some(v) => v,
        None => &regs[base + usize::from(w & OPND_REG_MASK)],
    }
}

/// An owned copy of the operand, for the slow path (`Prim::eval`) and for
/// consuming uses (the `updvec` vector and element).
#[inline(always)]
fn opnd_owned(slot: Option<Value>, regs: &[Value], base: usize, w: u16) -> Value {
    slot.unwrap_or_else(|| regs[base + usize::from(w & OPND_REG_MASK)].clone())
}

/// Applies a binary primitive to two operand views: the fast paths for the
/// prims that dominate residual execution, with everything they do not
/// produce — type mismatches, overflow, NaN, bad indices, uncommon prims —
/// falling through to [`Prim::eval`], which recomputes on the same values
/// and classifies the error, so the two paths cannot disagree with the
/// oracle. Shared by [`Op::Prim2`] and both levels of [`Op::Fused`].
#[inline(always)]
fn prim2_apply(prim: Prim, va: &Value, vb: &Value) -> Result<Value, EvalError> {
    let fast = match (prim, va, vb) {
        (Prim::Add, Value::Int(x), Value::Int(y)) => x.checked_add(*y).map(Value::Int),
        (Prim::Sub, Value::Int(x), Value::Int(y)) => x.checked_sub(*y).map(Value::Int),
        (Prim::Mul, Value::Int(x), Value::Int(y)) => x.checked_mul(*y).map(Value::Int),
        (Prim::Add, Value::Float(x), Value::Float(y)) => {
            let r = x + y;
            (!r.is_nan()).then_some(Value::Float(r))
        }
        (Prim::Sub, Value::Float(x), Value::Float(y)) => {
            let r = x - y;
            (!r.is_nan()).then_some(Value::Float(r))
        }
        (Prim::Mul, Value::Float(x), Value::Float(y)) => {
            let r = x * y;
            (!r.is_nan()).then_some(Value::Float(r))
        }
        (Prim::Eq, Value::Int(x), Value::Int(y)) => Some(Value::Bool(x == y)),
        (Prim::Ne, Value::Int(x), Value::Int(y)) => Some(Value::Bool(x != y)),
        (Prim::Lt, Value::Int(x), Value::Int(y)) => Some(Value::Bool(x < y)),
        (Prim::Le, Value::Int(x), Value::Int(y)) => Some(Value::Bool(x <= y)),
        (Prim::Gt, Value::Int(x), Value::Int(y)) => Some(Value::Bool(x > y)),
        (Prim::Ge, Value::Int(x), Value::Int(y)) => Some(Value::Bool(x >= y)),
        (Prim::VRef, Value::Vector(v), Value::Int(i)) => {
            // 1-based, in-range access only; everything else is the
            // oracle's VectorIndex error.
            i.checked_sub(1)
                .and_then(|x| usize::try_from(x).ok())
                .and_then(|idx| v.get(idx))
                .cloned()
        }
        _ => None,
    };
    match fast {
        Some(v) => Ok(v),
        None => prim.eval(&[va.clone(), vb.clone()]),
    }
}

/// Fast path for the hottest fused shape: a binary op over two vector
/// elements at constant indices — `(op (vref a i) (vref b j))`, which is
/// what unrolled numeric residuals are mostly made of. Reads registers
/// only (no steals, no mutation), so bailing out with `None` at any point
/// leaves the generic path to recompute from scratch; returns `Some` only
/// when no error could occur anywhere in the tree, so the error paths stay
/// the oracle's.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fused_vv_fast(
    regs: &[Value],
    base: usize,
    consts: &[Const],
    outer: Prim,
    a0: u16,
    a1: u16,
    b0: u16,
    b1: u16,
) -> Option<Value> {
    if (a0 | b0) & (OPND_CONST | OPND_STEAL) != 0 || a1 & OPND_CONST == 0 || b1 & OPND_CONST == 0 {
        return None;
    }
    let Value::Vector(va) = &regs[base + usize::from(a0)] else {
        return None;
    };
    let Value::Vector(vb) = &regs[base + usize::from(b0)] else {
        return None;
    };
    let Const::Int(ia) = consts[usize::from(a1 & !OPND_CONST)] else {
        return None;
    };
    let Const::Int(ib) = consts[usize::from(b1 & !OPND_CONST)] else {
        return None;
    };
    let x = va.get(usize::try_from(ia.checked_sub(1)?).ok()?)?;
    let y = vb.get(usize::try_from(ib.checked_sub(1)?).ok()?)?;
    scalar_apply(outer, x, y)
}

/// Fast path for fused scalar chains — `(op a (op2 b c))` over ints and
/// floats, e.g. the trailing adds of an unrolled reduction. Reads
/// registers without performing steals (skipping a steal of a scalar is
/// invisible: no shared structure, nothing downstream tests uniqueness);
/// `None` on anything but pure in-range arithmetic.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fused_scalar_fast(
    regs: &[Value],
    base: usize,
    consts: &[Const],
    outer: Prim,
    inner: Prim,
    a0: u16,
    b0: u16,
    b1: u16,
) -> Option<Value> {
    #[inline(always)]
    fn operand(regs: &[Value], base: usize, consts: &[Const], w: u16) -> Option<Value> {
        if w & OPND_CONST != 0 {
            Some(Value::from_const(consts[usize::from(w & !OPND_CONST)]))
        } else {
            match &regs[base + usize::from(w & OPND_REG_MASK)] {
                v @ (Value::Int(_) | Value::Float(_)) => Some(v.clone()),
                _ => None,
            }
        }
    }
    let va = operand(regs, base, consts, a0)?;
    let vb = operand(regs, base, consts, b0)?;
    let vc = operand(regs, base, consts, b1)?;
    let mid = scalar_apply(inner, &vb, &vc)?;
    scalar_apply(outer, &va, &mid)
}

/// Pure scalar arithmetic with the oracle's domain: checked ints, NaN-free
/// floats; `None` for anything that could be an error or an uncommon prim.
#[inline(always)]
fn scalar_apply(p: Prim, x: &Value, y: &Value) -> Option<Value> {
    match (p, x, y) {
        (Prim::Add, Value::Int(a), Value::Int(b)) => a.checked_add(*b).map(Value::Int),
        (Prim::Sub, Value::Int(a), Value::Int(b)) => a.checked_sub(*b).map(Value::Int),
        (Prim::Mul, Value::Int(a), Value::Int(b)) => a.checked_mul(*b).map(Value::Int),
        (Prim::Add, Value::Float(a), Value::Float(b)) => {
            let r = a + b;
            (!r.is_nan()).then_some(Value::Float(r))
        }
        (Prim::Sub, Value::Float(a), Value::Float(b)) => {
            let r = a - b;
            (!r.is_nan()).then_some(Value::Float(r))
        }
        (Prim::Mul, Value::Float(a), Value::Float(b)) => {
            let r = a * b;
            (!r.is_nan()).then_some(Value::Float(r))
        }
        _ => None,
    }
}

/// Generic (slow-path) execution of an [`Op::Fused`]: steals and constants
/// materialize up front (the compiler guarantees no slot steals a register
/// another slot reads); applications then run in oracle order — left inner,
/// right inner, outer. Kept out of line so the dispatch loop's hot path
/// stays small.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn fused_generic(
    regs: &mut [Value],
    base: usize,
    consts: &[Const],
    outer: Prim,
    fa: Option<Prim>,
    fb: Option<Prim>,
    a0: u16,
    a1: u16,
    b0: u16,
    b1: u16,
) -> Result<Value, EvalError> {
    let s0 = fetch_owned(regs, base, consts, a0);
    let s1 = fetch_owned(regs, base, consts, a1);
    let s2 = fetch_owned(regs, base, consts, b0);
    let s3 = fetch_owned(regs, base, consts, b1);
    let va = match fa {
        Some(p) => prim2_apply(p, opnd(&s0, regs, base, a0), opnd(&s1, regs, base, a1))?,
        None => opnd_owned(s0, regs, base, a0),
    };
    let vb = match fb {
        Some(p) => prim2_apply(p, opnd(&s2, regs, base, b0), opnd(&s3, regs, base, b1))?,
        None => opnd_owned(s2, regs, base, b0),
    };
    prim2_apply(outer, &va, &vb)
}

/// Hidden environment key under which VM-created closures record their
/// lambda-site index. The spelling contains a space, which the lexer can
/// never produce, so it cannot collide with a program variable.
fn site_key() -> Symbol {
    static KEY: OnceLock<Symbol> = OnceLock::new();
    *KEY.get_or_init(|| Symbol::intern("vm lambda site"))
}

/// Hidden environment key recording which compiled program a closure was
/// created by (see [`CompiledProgram::instance`]).
fn instance_key() -> Symbol {
    static KEY: OnceLock<Symbol> = OnceLock::new();
    *KEY.get_or_init(|| Symbol::intern("vm program instance"))
}

/// Execution budgets for a VM run; defaults match the AST evaluator's.
#[derive(Clone, Copy, Debug)]
pub struct VmOptions {
    /// Number of function applications allowed per run.
    pub fuel: u64,
    /// Call-depth limit (the entry call counts as depth 1).
    pub max_depth: u32,
    /// Optional wall-clock budget per run.
    pub deadline: Option<Duration>,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions {
            fuel: DEFAULT_FUEL,
            max_depth: DEFAULT_MAX_DEPTH,
            deadline: None,
        }
    }
}

impl VmOptions {
    /// Budgets inherited from a live [`Governor`]: whatever fuel and
    /// wall-clock allowance the governor has left becomes this run's
    /// budget, so residual execution launched from inside a governed
    /// request cannot outspend the request itself. The call-depth limit
    /// keeps its default (execution depth is not a specializer budget).
    pub fn from_governor(g: &Governor) -> VmOptions {
        VmOptions {
            fuel: g.remaining_fuel(),
            max_depth: DEFAULT_MAX_DEPTH,
            deadline: g.remaining_deadline(),
        }
    }
}

/// What one execution cost; feeds the service-level VM counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecReport {
    /// Chunks compiled for this run (0 on a chunk-cache hit).
    pub chunks_compiled: u64,
    /// True if the compiled program came from the chunk cache.
    pub cache_hit: bool,
    /// Instructions executed.
    pub ops_executed: u64,
    /// Function applications performed.
    pub fuel_used: u64,
}

/// A bytecode interpreter with the budgets of [`VmOptions`].
///
/// # Examples
///
/// ```
/// use ppe_lang::{parse_program, Value};
/// use ppe_vm::{compile, Vm};
///
/// let p = parse_program("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))").unwrap();
/// let cp = compile(&p).unwrap();
/// let mut vm = Vm::new();
/// assert_eq!(vm.run_main(&cp, &[Value::Int(5)]).unwrap(), Value::Int(120));
/// ```
#[derive(Debug, Default)]
pub struct Vm {
    opts: VmOptions,
    fuel: u64,
    last_ops: u64,
    /// Recycled register storage: cleared between runs, capacity kept.
    /// The specializer's static-eval path replays thousands of tiny
    /// chunks per run, where a fresh allocation would rival the whole
    /// execution.
    regs_buf: Vec<Value>,
}

struct Frame {
    chunk: u32,
    ret_pc: u32,
    base: u32,
    /// Absolute register index (caller window) the result lands in.
    dst: u32,
}

impl Vm {
    /// A VM with default budgets (same as `Evaluator::new`).
    pub fn new() -> Vm {
        Vm::with_options(VmOptions::default())
    }

    /// A VM with explicit budgets.
    pub fn with_options(opts: VmOptions) -> Vm {
        Vm {
            opts,
            fuel: opts.fuel,
            last_ops: 0,
            regs_buf: Vec::new(),
        }
    }

    /// Runs the program's main function; resets fuel, like the oracle's
    /// `run_main`.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`], with the same classification the AST evaluator
    /// would produce on the same program and arguments.
    pub fn run_main(&mut self, cp: &CompiledProgram, args: &[Value]) -> Result<Value, EvalError> {
        if cp.chunks.is_empty() {
            return Err(EvalError::UnknownFunction(Symbol::intern(
                "<empty program>",
            )));
        }
        self.run_at(cp, 0, args)
    }

    /// Runs a named function; resets fuel.
    ///
    /// # Errors
    ///
    /// As for [`Vm::run_main`].
    pub fn run(
        &mut self,
        cp: &CompiledProgram,
        name: Symbol,
        args: &[Value],
    ) -> Result<Value, EvalError> {
        self.fuel = self.opts.fuel;
        let entry = *cp
            .by_name
            .get(&name)
            .ok_or(EvalError::UnknownFunction(name))?;
        self.run_at(cp, entry, args)
    }

    /// Runs the chunk at `entry`; resets fuel. The hot entry for the
    /// spec-eval path: no symbol lookup (main is always chunk 0).
    fn run_at(
        &mut self,
        cp: &CompiledProgram,
        entry: u32,
        args: &[Value],
    ) -> Result<Value, EvalError> {
        self.fuel = self.opts.fuel;
        let deadline_at = self.opts.deadline.map(|d| Instant::now() + d);
        let mut ops: u64 = 0;
        let out = self.exec(cp, entry, args, deadline_at, &mut ops);
        self.last_ops = ops;
        cache::add_ops_executed(ops);
        out
    }

    /// Applications consumed by the last run (oracle: `fuel_used`).
    pub fn fuel_used(&self) -> u64 {
        self.opts.fuel - self.fuel
    }

    /// Instructions executed by the last run.
    pub fn ops_executed(&self) -> u64 {
        self.last_ops
    }

    fn exec(
        &mut self,
        cp: &CompiledProgram,
        entry: u32,
        args: &[Value],
        deadline_at: Option<Instant>,
        ops: &mut u64,
    ) -> Result<Value, EvalError> {
        // Entry protocol mirrors `Evaluator::apply_named` (the caller
        // resolved the name): arity → fuel → depth.
        let mut chunk: &Chunk = &cp.chunks[entry as usize];
        if usize::from(chunk.arity) != args.len() {
            return Err(EvalError::Arity {
                function: chunk.name,
                expected: usize::from(chunk.arity),
                got: args.len(),
            });
        }
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        if self.opts.max_depth == 0 {
            return Err(EvalError::DepthExceeded);
        }

        let mut regs: Vec<Value> = mem::take(&mut self.regs_buf);
        regs.clear();
        regs.reserve(usize::from(chunk.n_regs));
        regs.extend_from_slice(args);
        regs.resize(usize::from(chunk.n_regs), nil());
        let mut frames: Vec<Frame> = Vec::new();
        let mut cur_chunk: u32 = entry;
        let mut pc: usize = 0;
        let mut base: usize = 0;
        // Calls the compiler spliced into their caller have no frame, but
        // the oracle still counts them against the call-depth budget; the
        // EnterInline/LeaveInline markers keep this balanced counter so
        // every depth check below sees the same effective depth the
        // uninlined program would.
        let mut inline_depth: u32 = 0;

        let out = (|| loop {
            let op = chunk.code[pc];
            pc += 1;
            *ops += 1;
            if let Some(at) = deadline_at {
                if *ops & DEADLINE_CHECK_MASK == 0 && Instant::now() >= at {
                    return Err(EvalError::DeadlineExceeded);
                }
            }
            match op {
                Op::Const { dst, k } => {
                    regs[base + usize::from(dst)] = Value::from_const(cp.consts[k as usize]);
                }
                Op::LoadFn { dst, f } => {
                    regs[base + usize::from(dst)] = Value::FnVal(f);
                }
                Op::Move { dst, src } => {
                    regs[base + usize::from(dst)] = regs[base + usize::from(src)].clone();
                }
                Op::Prim1 { prim, dst, a } => {
                    let sa = fetch_owned(&mut regs, base, &cp.consts, a);
                    let va = opnd(&sa, &regs, base, a);
                    let fast = match (prim, va) {
                        (Prim::Not, Value::Bool(x)) => Some(Value::Bool(!x)),
                        (Prim::Neg, Value::Int(x)) => x.checked_neg().map(Value::Int),
                        (Prim::Neg, Value::Float(x)) => Some(Value::Float(-x)),
                        (Prim::VSize, Value::Vector(v)) => Some(Value::Int(v.len() as i64)),
                        _ => None,
                    };
                    let v = match fast {
                        Some(v) => v,
                        None => prim.eval(&[opnd_owned(sa, &regs, base, a)])?,
                    };
                    regs[base + usize::from(dst)] = v;
                }
                Op::Prim2 { prim, dst, a, b } => {
                    let sa = fetch_owned(&mut regs, base, &cp.consts, a);
                    let sb = fetch_owned(&mut regs, base, &cp.consts, b);
                    let v =
                        prim2_apply(prim, opnd(&sa, &regs, base, a), opnd(&sb, &regs, base, b))?;
                    regs[base + usize::from(dst)] = v;
                }
                Op::Fused {
                    outer,
                    fa,
                    fb,
                    dst,
                    a0,
                    a1,
                    b0,
                    b1,
                } => {
                    // Shape-specialized fast paths first; they read
                    // registers without mutating, so a `None` falls
                    // through to the generic path with nothing consumed.
                    let fastv = if fa == Some(Prim::VRef) && fb == Some(Prim::VRef) {
                        fused_vv_fast(&regs, base, &cp.consts, outer, a0, a1, b0, b1)
                    } else if fa.is_none() {
                        fb.and_then(|p2| {
                            fused_scalar_fast(&regs, base, &cp.consts, outer, p2, a0, b0, b1)
                        })
                    } else {
                        None
                    };
                    let v = match fastv {
                        Some(v) => v,
                        None => fused_generic(
                            &mut regs, base, &cp.consts, outer, fa, fb, a0, a1, b0, b1,
                        )?,
                    };
                    regs[base + usize::from(dst)] = v;
                }
                Op::FoldChain {
                    prim,
                    dst,
                    base: fbase,
                    n,
                } => {
                    // The compiler evaluated the spine elements into
                    // `regs[lo..lo+n]` in source order; applying the
                    // operator innermost-out (right to left) is exactly the
                    // oracle's order for the nested expression. The
                    // temporaries are dead afterwards, so values are stolen.
                    debug_assert!(n >= 2, "degenerate fold chain");
                    let lo = base + usize::from(fbase);
                    let mut acc = mem::replace(&mut regs[lo + usize::from(n) - 1], nil());
                    for i in (0..usize::from(n) - 1).rev() {
                        let x = mem::replace(&mut regs[lo + i], nil());
                        acc = match scalar_apply(prim, &x, &acc) {
                            Some(v) => v,
                            None => prim2_apply(prim, &x, &acc)?,
                        };
                    }
                    regs[base + usize::from(dst)] = acc;
                }
                Op::Prim3 { prim, dst, a, b, c } => {
                    let sa = fetch_owned(&mut regs, base, &cp.consts, a);
                    let sb = fetch_owned(&mut regs, base, &cp.consts, b);
                    let sc = fetch_owned(&mut regs, base, &cp.consts, c);
                    let shape = match (opnd(&sa, &regs, base, a), opnd(&sb, &regs, base, b)) {
                        (Value::Vector(v), Value::Int(i)) => Some((*i, v.len())),
                        _ => None,
                    };
                    let v = match (prim, shape) {
                        (Prim::UpdVec, Some((i, len))) => {
                            if !(i >= 1 && (i as u64) <= len as u64) {
                                return Err(EvalError::VectorIndex { index: i, len });
                            }
                            let idx = (i - 1) as usize;
                            let val = opnd_owned(sc, &regs, base, c);
                            match opnd_owned(sa, &regs, base, a) {
                                // A stolen, uniquely referenced vector is
                                // updated in place — the compiler proved no
                                // one else can observe it. Shared vectors
                                // get the oracle's copy-on-update.
                                Value::Vector(mut rc) => match Rc::get_mut(&mut rc) {
                                    Some(slot) => {
                                        slot[idx] = val;
                                        Value::Vector(rc)
                                    }
                                    None => {
                                        let mut out = rc.as_ref().clone();
                                        out[idx] = val;
                                        Value::vector(out)
                                    }
                                },
                                _ => unreachable!("shape checked above"),
                            }
                        }
                        _ => {
                            let args = [
                                opnd_owned(sa, &regs, base, a),
                                opnd_owned(sb, &regs, base, b),
                                opnd_owned(sc, &regs, base, c),
                            ];
                            prim.eval(&args)?
                        }
                    };
                    regs[base + usize::from(dst)] = v;
                }
                Op::Prim {
                    prim,
                    dst,
                    base: abase,
                    n,
                } => {
                    let lo = base + usize::from(abase);
                    let v = prim.eval(&regs[lo..lo + usize::from(n)])?;
                    regs[base + usize::from(dst)] = v;
                }
                Op::EnterInline => {
                    // Exactly the charge sequence of the Op::Call this
                    // marker replaced: fuel, then depth.
                    if self.fuel == 0 {
                        return Err(EvalError::OutOfFuel);
                    }
                    self.fuel -= 1;
                    if frames.len() as u32 + inline_depth + 1 >= self.opts.max_depth {
                        return Err(EvalError::DepthExceeded);
                    }
                    inline_depth += 1;
                }
                Op::LeaveInline => inline_depth -= 1,
                Op::Release { src } => {
                    regs[base + usize::from(src)] = nil();
                }
                Op::Jump { to } => pc = to as usize,
                Op::JumpIfFalse { cond, to } => match regs[base + usize::from(cond)] {
                    Value::Bool(true) => {}
                    Value::Bool(false) => pc = to as usize,
                    _ => return Err(EvalError::NonBoolCondition),
                },
                Op::Call {
                    func,
                    dst,
                    base: abase,
                    n: _,
                } => {
                    // Name and arity are compile-time facts; charge fuel,
                    // then check depth, as the oracle does.
                    if self.fuel == 0 {
                        return Err(EvalError::OutOfFuel);
                    }
                    self.fuel -= 1;
                    if frames.len() as u32 + inline_depth + 1 >= self.opts.max_depth {
                        return Err(EvalError::DepthExceeded);
                    }
                    frames.push(Frame {
                        chunk: cur_chunk,
                        ret_pc: pc as u32,
                        base: base as u32,
                        dst: (base + usize::from(dst)) as u32,
                    });
                    base += usize::from(abase);
                    cur_chunk = func;
                    chunk = &cp.chunks[cur_chunk as usize];
                    pc = 0;
                    regs.resize(base + usize::from(chunk.n_regs), nil());
                }
                Op::CallValue {
                    f,
                    dst,
                    base: abase,
                    n,
                } => {
                    let fv = regs[base + usize::from(f)].clone();
                    match fv {
                        Value::FnVal(g) => {
                            let func = *cp.by_name.get(&g).ok_or(EvalError::UnknownFunction(g))?;
                            let callee = &cp.chunks[func as usize];
                            if callee.arity != n {
                                return Err(EvalError::Arity {
                                    function: g,
                                    expected: usize::from(callee.arity),
                                    got: usize::from(n),
                                });
                            }
                            if self.fuel == 0 {
                                return Err(EvalError::OutOfFuel);
                            }
                            self.fuel -= 1;
                            if frames.len() as u32 + inline_depth + 1 >= self.opts.max_depth {
                                return Err(EvalError::DepthExceeded);
                            }
                            frames.push(Frame {
                                chunk: cur_chunk,
                                ret_pc: pc as u32,
                                base: base as u32,
                                dst: (base + usize::from(dst)) as u32,
                            });
                            base += usize::from(abase);
                            cur_chunk = func;
                            chunk = &cp.chunks[cur_chunk as usize];
                            pc = 0;
                            regs.resize(base + usize::from(chunk.n_regs), nil());
                        }
                        Value::Closure(clo) => {
                            let env = &clo.env;
                            if clo.params.len() != usize::from(n) {
                                return Err(EvalError::Arity {
                                    function: Symbol::intern("<lambda>"),
                                    expected: clo.params.len(),
                                    got: usize::from(n),
                                });
                            }
                            if self.fuel == 0 {
                                return Err(EvalError::OutOfFuel);
                            }
                            self.fuel -= 1;
                            if frames.len() as u32 + inline_depth + 1 >= self.opts.max_depth {
                                return Err(EvalError::DepthExceeded);
                            }
                            let site = match (env.lookup(instance_key()), env.lookup(site_key())) {
                                (Some(&Value::Int(inst)), Some(&Value::Int(site)))
                                    if inst as u64 == cp.instance =>
                                {
                                    &cp.lambdas[site as usize]
                                }
                                _ => {
                                    // A closure not created by this compiled
                                    // program (e.g. built by the AST
                                    // evaluator and passed in as an
                                    // argument). The language itself cannot
                                    // construct one of these.
                                    return Err(EvalError::Unsupported(
                                        "closure was not created by this VM",
                                    ));
                                }
                            };
                            let func = site.chunk;
                            let callee = &cp.chunks[func as usize];
                            frames.push(Frame {
                                chunk: cur_chunk,
                                ret_pc: pc as u32,
                                base: base as u32,
                                dst: (base + usize::from(dst)) as u32,
                            });
                            base += usize::from(abase);
                            cur_chunk = func;
                            chunk = callee;
                            pc = 0;
                            regs.resize(base + usize::from(chunk.n_regs), nil());
                            let cap0 = base + usize::from(chunk.arity);
                            for (i, &(sym, _)) in site.captures.iter().enumerate() {
                                regs[cap0 + i] =
                                    env.lookup(sym).cloned().ok_or(EvalError::UnboundVar(sym))?;
                            }
                        }
                        _ => return Err(EvalError::NotAFunction),
                    }
                }
                Op::MakeClosure { site, dst } => {
                    let s = &cp.lambdas[site as usize];
                    let mut env = Env::empty()
                        .bind(instance_key(), Value::Int(cp.instance as i64))
                        .bind(site_key(), Value::Int(site as i64));
                    for &(sym, r) in &s.captures {
                        env = env.bind(sym, regs[base + usize::from(r)].clone());
                    }
                    regs[base + usize::from(dst)] =
                        Value::closure(s.params.clone(), Rc::new(s.body.clone()), env);
                }
                Op::Ret { src } => {
                    let v = std::mem::replace(&mut regs[base + usize::from(src)], nil());
                    match frames.pop() {
                        None => return Ok(v),
                        Some(fr) => {
                            cur_chunk = fr.chunk;
                            chunk = &cp.chunks[cur_chunk as usize];
                            pc = fr.ret_pc as usize;
                            base = fr.base as usize;
                            regs.resize(base + usize::from(chunk.n_regs), nil());
                            regs[fr.dst as usize] = v;
                        }
                    }
                }
                Op::Fail { err } => return Err(cp.errors[err as usize].clone()),
            }
        })();
        // Drop this run's values now, keep the capacity for the next.
        regs.clear();
        self.regs_buf = regs;
        out
    }
}

/// One-shot convenience: compile `program` through the chunk cache and run
/// its main function, returning the outcome together with an
/// [`ExecReport`] for metrics.
pub fn execute_main(
    program: &Program,
    args: &[Value],
    opts: VmOptions,
) -> (Result<Value, EvalError>, ExecReport) {
    let (cp, cache_hit, chunks_compiled) = match compile_cached(program) {
        Ok(x) => x,
        // Structural compile failure: report through the common error
        // channel with an empty report.
        Err(e) => return (Err(e.to_eval_error()), ExecReport::default()),
    };
    let mut vm = Vm::with_options(opts);
    let out = vm.run_main(&cp, args);
    let report = ExecReport {
        chunks_compiled,
        cache_hit,
        ops_executed: vm.ops_executed(),
        fuel_used: vm.fuel_used(),
    };
    (out, report)
}
