//! A bytecode compiler and virtual machine for residual programs.
//!
//! The point of partial evaluation is that residual programs *run fast*
//! (the paper's §1 and §7), but a tree-walking interpreter leaves most of
//! that speed on the table: every execution re-pays environment lookups,
//! per-node bookkeeping, and argument-vector allocation. This crate lowers
//! programs to a compact register bytecode once — variables become
//! registers, call arguments land in overlapping register windows, and
//! constants are pooled — and a `match`-dispatched loop executes them.
//!
//! The existing AST evaluator, [`ppe_lang::Evaluator`], is kept as the
//! *differential oracle*: on every program and input, both engines must
//! produce identical values and identical error classifications, including
//! fuel exhaustion and call-depth limits (see `tests/vm_differential.rs`
//! and the golden-corpus sweep at the workspace root).
//!
//! Compiled programs are cached process-wide, keyed by the hash-consed
//! term fingerprints of their definition bodies, so repeat executions —
//! the dominant pattern behind the server's `"execute"` path — skip
//! compilation entirely; see [`compile_cached`] and [`vm_stats`].
//!
//! # Quick example
//!
//! ```
//! use ppe_lang::{parse_program, Value};
//! use ppe_vm::{compile, Vm};
//!
//! let p = parse_program(
//!     "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
//! ).unwrap();
//! let cp = compile(&p).unwrap();
//! let mut vm = Vm::new();
//! let out = vm.run_main(&cp, &[Value::Int(3), Value::Int(4)]).unwrap();
//! assert_eq!(out, Value::Int(81));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chunk;
pub mod compile;
mod spec_eval;
mod vm;

pub use cache::{compile_cached, vm_stats, VmStats};
pub use chunk::{Chunk, CompiledProgram, LambdaSite, Op};
pub use compile::{compile, compile_with, CompileError, CompileErrorKind, CompileOptions};
pub use spec_eval::VmStaticEval;
pub use vm::{execute_main, ExecReport, Vm, VmOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::{
        parse_program, EvalError, Evaluator, Expr, FunDef, Prim, Program, Symbol, Value,
    };

    fn both_p(p: &Program, args: &[Value]) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
        let ast = Evaluator::new(p).run_main(args);
        let cp = compile(p).unwrap();
        let vm = Vm::new().run_main(&cp, args);
        (ast, vm)
    }

    fn both(src: &str, args: &[Value]) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
        both_p(&parse_program(src).unwrap(), args)
    }

    #[test]
    fn agrees_on_factorial() {
        let (a, v) = both(
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
            &[Value::Int(10)],
        );
        assert_eq!(a, v);
        assert_eq!(v.unwrap(), Value::Int(3_628_800));
    }

    #[test]
    fn agrees_on_the_papers_inner_product() {
        let src = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
                   (define (dotprod a b n)
                     (if (= n 0) 0.0
                         (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";
        let a = Value::vector(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(3.0),
        ]);
        let b = Value::vector(vec![
            Value::Float(4.0),
            Value::Float(5.0),
            Value::Float(6.0),
        ]);
        let (ast, vm) = both(src, &[a, b]);
        assert_eq!(ast, vm);
        assert_eq!(vm.unwrap(), Value::Float(32.0));
    }

    #[test]
    fn agrees_on_runtime_errors() {
        for (src, args) in [
            ("(define (f x) (/ x 0))", vec![Value::Int(1)]),
            ("(define (f x) (if x 1 2))", vec![Value::Int(3)]),
            (
                "(define (f x) (vref x 9))",
                vec![Value::vector(vec![Value::Int(1)])],
            ),
            ("(define (f x) (+ x #t))", vec![Value::Int(1)]),
        ] {
            let (a, v) = both(src, &args);
            assert_eq!(a, v, "on {src}");
            assert!(v.is_err(), "on {src}");
        }
    }

    #[test]
    fn fuel_accounting_matches_the_oracle_exactly() {
        let src = "(define (count n) (if (= n 0) 0 (count (- n 1))))";
        let p = parse_program(src).unwrap();
        let cp = compile(&p).unwrap();
        for fuel in [0u64, 1, 5, 11, 100] {
            let mut ast = Evaluator::with_fuel(&p, fuel);
            let a = ast.run_main(&[Value::Int(10)]);
            let mut vm = Vm::with_options(VmOptions {
                fuel,
                ..VmOptions::default()
            });
            let v = vm.run_main(&cp, &[Value::Int(10)]);
            assert_eq!(a, v, "fuel={fuel}");
            assert_eq!(ast.fuel_used(), vm.fuel_used(), "fuel={fuel}");
        }
    }

    #[test]
    fn depth_limit_matches_the_oracle_exactly() {
        let src = "(define (down n) (if (= n 0) 0 (+ 0 (down (- n 1)))))";
        let p = parse_program(src).unwrap();
        let cp = compile(&p).unwrap();
        for max_depth in [1u32, 2, 10, 50] {
            let mut ast = Evaluator::new(&p);
            ast.set_max_depth(max_depth);
            let a = ast.run_main(&[Value::Int(40)]);
            let mut vm = Vm::with_options(VmOptions {
                max_depth,
                ..VmOptions::default()
            });
            let v = vm.run_main(&cp, &[Value::Int(40)]);
            assert_eq!(a, v, "max_depth={max_depth}");
        }
    }

    #[test]
    fn closures_capture_and_apply() {
        let src = "(define (main x) (let ((add-x (lambda (y) (+ x y)))) (apply2 add-x 10)))
                   (define (apply2 f v) (f v))";
        let (a, v) = both(src, &[Value::Int(5)]);
        assert_eq!(a, v);
        assert_eq!(v.unwrap(), Value::Int(15));
    }

    #[test]
    fn fnrefs_dispatch_dynamically() {
        let src = "(define (main x) (twice inc x))
                   (define (twice f x) (f (f x)))
                   (define (inc x) (+ x 1))";
        let (a, v) = both(src, &[Value::Int(1)]);
        assert_eq!(a, v);
        assert_eq!(v.unwrap(), Value::Int(3));
    }

    #[test]
    fn nested_lambdas_chain_captures() {
        let src = "(define (main x)
                     (let ((outer (lambda (a) (lambda (b) (+ (+ a b) x)))))
                       ((outer 10) 100)))";
        let (a, v) = both(src, &[Value::Int(1)]);
        assert_eq!(a, v);
        assert_eq!(v.unwrap(), Value::Int(111));
    }

    #[test]
    fn strict_boolean_prims_evaluate_both_arms() {
        // `and` is strict: the erroring second argument fires even though
        // the first is #f.
        let src = "(define (f x) (and (< x 0) (< (/ 1 0) 1)))";
        let (a, v) = both(src, &[Value::Int(5)]);
        assert_eq!(a, v);
        assert_eq!(v.unwrap_err(), EvalError::DivByZero);
    }

    #[test]
    fn returned_closures_display_like_the_oracles() {
        let src = "(define (main x) (lambda (y) (+ x y)))";
        let (a, v) = both(src, &[Value::Int(1)]);
        assert_eq!(a.unwrap().to_string(), v.unwrap().to_string());
    }

    #[test]
    fn unbound_variable_fires_only_when_reached() {
        // `(define (f x) (if (< x 0) z x))` with `z` unbound: the parser
        // rejects this, but `Program::new` admits it and the oracle reports
        // `UnboundVar` only when the branch is taken. Parity either way.
        let body = Expr::If(
            Box::new(Expr::prim(Prim::Lt, vec![Expr::var("x"), Expr::int(0)])),
            Box::new(Expr::var("z")),
            Box::new(Expr::var("x")),
        );
        let p = Program::new(vec![FunDef::new(
            Symbol::intern("f"),
            vec![Symbol::intern("x")],
            body,
        )])
        .unwrap();
        let (a, v) = both_p(&p, &[Value::Int(5)]);
        assert_eq!(a, v);
        assert_eq!(v.unwrap(), Value::Int(5));
        let (a, v) = both_p(&p, &[Value::Int(-5)]);
        assert_eq!(a, v);
        assert!(matches!(v.unwrap_err(), EvalError::UnboundVar(_)));
    }

    #[test]
    fn unknown_function_call_fires_only_when_reached() {
        // `(define (f x) (if (< x 0) (mystery x) x))` — same idea with an
        // undefined callee.
        let body = Expr::If(
            Box::new(Expr::prim(Prim::Lt, vec![Expr::var("x"), Expr::int(0)])),
            Box::new(Expr::call("mystery", vec![Expr::var("x")])),
            Box::new(Expr::var("x")),
        );
        let p = Program::new(vec![FunDef::new(
            Symbol::intern("f"),
            vec![Symbol::intern("x")],
            body,
        )])
        .unwrap();
        let (a, v) = both_p(&p, &[Value::Int(5)]);
        assert_eq!(a, v);
        assert_eq!(v.unwrap(), Value::Int(5));
        let (a, v) = both_p(&p, &[Value::Int(-5)]);
        assert_eq!(a, v);
        assert!(matches!(v.unwrap_err(), EvalError::UnknownFunction(_)));
    }
}
