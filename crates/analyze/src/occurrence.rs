//! Pass 3: occurrence and purity analysis.
//!
//! Dead code is only worth flagging if the optimizer would agree: a `let`
//! whose binding is unused but could diverge or error is *not* droppable
//! (strict language), and flagging it would contradict what
//! `optimize_program` actually does. So this pass delegates the two
//! judgments to `ppe_lang::opt` — [`count_uses`] for "used" and
//! [`is_droppable`] for "safe to drop" — guaranteeing the analyzer and the
//! dead-code eliminator share one definition of droppable.

use ppe_lang::diag::Diagnostic;
use ppe_lang::Symbol;
use ppe_lang::{count_uses, is_droppable, Expr, FunDef, OptLevel};

/// Flags unused parameters (`W0003`) and dead `let` bindings (`W0004`).
pub fn check(defs: &[FunDef], out: &mut Vec<Diagnostic>) {
    for def in defs {
        for p in &def.params {
            if count_uses(&def.body, *p) == 0 {
                out.push(
                    Diagnostic::warning(
                        "W0003",
                        format!("parameter `{p}` of `{}` is never used", def.name),
                    )
                    .in_function(def.name),
                );
            }
        }
        check_expr(&def.body, def.name, "body", out);
    }
}

fn check_expr(e: &Expr, function: Symbol, path: &str, out: &mut Vec<Diagnostic>) {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::FnRef(_) => {}
        Expr::Prim(_, args) | Expr::Call(_, args) => {
            for (i, a) in args.iter().enumerate() {
                check_expr(a, function, &format!("{path}.arg{i}"), out);
            }
        }
        Expr::If(c, t, f) => {
            check_expr(c, function, &format!("{path}.cond"), out);
            check_expr(t, function, &format!("{path}.then"), out);
            check_expr(f, function, &format!("{path}.else"), out);
        }
        Expr::Let(x, b, body) => {
            if count_uses(body, *x) == 0 && is_droppable(b, OptLevel::Safe) {
                out.push(
                    Diagnostic::warning(
                        "W0004",
                        format!("`let {x}` binds a value that is never used (the optimizer would drop it)"),
                    )
                    .in_function(function)
                    .at_path(path),
                );
            }
            check_expr(b, function, &format!("{path}.bound"), out);
            check_expr(body, function, &format!("{path}.body"), out);
        }
        Expr::Lambda(_, body) => check_expr(body, function, &format!("{path}.lambda"), out),
        Expr::App(f, args) => {
            check_expr(f, function, &format!("{path}.callee"), out);
            for (i, a) in args.iter().enumerate() {
                check_expr(a, function, &format!("{path}.arg{i}"), out);
            }
        }
    }
}
