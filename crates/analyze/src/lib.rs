//! Static diagnostics for PPE programs, inputs, and annotations.
//!
//! The engines (`ppe-online`, `ppe-offline`) and the service (`ppe-server`)
//! assume well-formed programs, consistent input products (Definition 6),
//! and congruent binding-time annotations (Definition 10). This crate
//! checks all three *statically* and reports every finding as a
//! [`Diagnostic`] — a stable rustc-style code, a severity, a message, and
//! a location — instead of a first-error string or a mid-specialization
//! crash. It backs the `ppe check` CLI subcommand and the server's
//! pre-flight pass.
//!
//! The passes (each pass is a module):
//!
//! 1. [`wellformed`]: unbound variables, call-site arity, unknown
//!    functions, duplicate definitions/parameters, shadowing — over the
//!    *lenient* parse ([`ppe_lang::parse_defs`]), so every problem is
//!    reported, not just the first. Unknown primitives and
//!    primitive-arity mistakes surface as `E0001` from the parser, which
//!    resolves operators while source positions are still in hand.
//! 2. [`callgraph`]: unfold-safety over the static call graph — both the
//!    structural mode (recursion no conditional guards, shared with
//!    `ppe_online::preflight`) and the binding-time-aware mode (recursion
//!    controlled only by static data, the classic infinite-unfolding
//!    risk).
//! 3. [`occurrence`]: unused parameters and dead `let` bindings, sharing
//!    `ppe_lang::opt`'s definition of droppable so the analyzer and the
//!    optimizer never disagree.
//! 4. [`depgraph`]: the dependency graph — call edges (one shared
//!    builder with pass 2), SCC condensation, per-definition closure
//!    fingerprints for incremental re-specialization, dead-code
//!    detection (`W0005`), and old-vs-new change-impact classification.
//! 5. Binding-time certificate checking: re-exported from
//!    [`ppe_offline::certify`], which validates annotated output for
//!    congruence (codes `E0101`–`E0104`).
//!
//! Input products are checked for Definition-6 consistency by
//! [`check_inputs`] (`E0007`), reusing `PeVal::concretizes` — the same
//! membership predicate the witness search uses.
//!
//! See `ppe_lang::diag` for the full code table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod depgraph;
pub mod occurrence;
pub mod wellformed;

use ppe_core::consistency::{check_consistent, default_candidates};
use ppe_core::{FacetSet, ProductVal};
use ppe_lang::diag::{error_count, warning_count};
use ppe_lang::{parse_defs, FunDef, Program};
pub use ppe_lang::{Diagnostic, Severity};
pub use ppe_offline::certify::check_certificate;

/// The result of checking one program source: all diagnostics, in
/// deterministic order (pass order, then definition order, then
/// evaluation order within a body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckReport {
    /// Every finding.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        error_count(&self.diagnostics)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        warning_count(&self.diagnostics)
    }

    /// True iff there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True iff at least one finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }
}

/// Checks program source text: lenient parse, then passes 1–4.
///
/// A lexical/syntactic problem (including unknown primitives and
/// primitive arity, which the parser owns) yields a single `E0001`
/// diagnostic carrying the parser's line/column; otherwise the raw
/// definitions go through [`check_defs`].
///
/// # Examples
///
/// ```
/// use ppe_analyze::check_source;
///
/// let report = check_source("(define (f x) (+ x y))");
/// assert_eq!(report.diagnostics[0].code, "E0004"); // unbound `y`
/// assert!(report.has_errors());
/// assert!(check_source("(define (f x) x)").is_clean());
/// ```
pub fn check_source(src: &str) -> CheckReport {
    match parse_defs(src) {
        Err(e) => CheckReport {
            diagnostics: vec![
                Diagnostic::error("E0001", e.message.clone()).at_line_col(e.line, e.col)
            ],
        },
        Ok(defs) => CheckReport {
            diagnostics: check_defs(&defs),
        },
    }
}

/// Passes 1–4 over raw definitions (the lenient-parse output or
/// programmatically built defs).
pub fn check_defs(defs: &[FunDef]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    wellformed::check(defs, &mut out);
    callgraph::check_structural(defs, &mut out);
    depgraph::check_dead_code(defs, &mut out);
    occurrence::check(defs, &mut out);
    out
}

/// Passes 1–4 over an already-validated [`Program`] — the server's
/// pre-flight entry point: errors will be absent (validation already
/// gated), warnings (`W0001`–`W0005`) remain meaningful.
pub fn check_program(program: &Program) -> Vec<Diagnostic> {
    check_defs(program.defs())
}

/// Checks each input product for Definition-6 consistency against the
/// default candidate pool, reporting `E0007` per inconsistent product.
/// Membership of the PE component is `PeVal::concretizes` — the predicate
/// shared with `ppe_core::consistency`.
///
/// # Examples
///
/// ```
/// use ppe_analyze::check_inputs;
/// use ppe_core::{facets::{SignFacet, SignVal}, AbsVal, FacetSet, ProductVal};
/// use ppe_lang::Const;
///
/// let set = FacetSet::with_facets(vec![Box::new(SignFacet)]);
/// // The constant 3 claimed negative: no concrete value fits both.
/// let bad = ProductVal::from_const(Const::Int(3), &set)
///     .with_facet(0, AbsVal::new(SignVal::Neg));
/// let diags = check_inputs(&[bad], &set);
/// assert_eq!(diags[0].code, "E0007");
/// ```
pub fn check_inputs(products: &[ProductVal], set: &FacetSet) -> Vec<Diagnostic> {
    let candidates = default_candidates();
    let mut out = Vec::new();
    for (i, p) in products.iter().enumerate() {
        if let Err(e) = check_consistent(p, set, &candidates) {
            out.push(Diagnostic::error(
                "E0007",
                format!("input {i} is inconsistent: {e}"),
            ));
        }
    }
    out
}

/// Binding-time-aware unfold-safety (`W0002`): see
/// [`callgraph::check_unfolding`].
pub fn check_unfolding(program: &Program, analysis: &ppe_offline::Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    callgraph::check_unfolding(program, analysis, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_offline::{analyze, AbstractInput};

    fn codes(src: &str) -> Vec<&'static str> {
        check_source(src)
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn parse_errors_are_e0001_with_position() {
        let r = check_source("(define (f x)");
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "E0001");
        assert!(d.line >= 1);
        // Unknown primitive: also the parser's finding.
        let r = check_source("(define (f x) (frobnicate x))");
        assert_eq!(r.diagnostics[0].code, "E0001");
        assert!(r.diagnostics[0].message.contains("unknown operator"));
        // Primitive arity: likewise.
        let r = check_source("(define (f x) (+ x))");
        assert_eq!(r.diagnostics[0].code, "E0001");
        assert!(r.diagnostics[0].message.contains("expects"));
    }

    #[test]
    fn duplicate_definition_is_e0002() {
        assert!(codes("(define (f x) x) (define (f y) y)").contains(&"E0002"));
    }

    #[test]
    fn duplicate_parameter_is_e0003() {
        assert!(codes("(define (f x x) x)").contains(&"E0003"));
    }

    #[test]
    fn unbound_variable_is_e0004_with_path() {
        let r = check_source("(define (f x) (if (= x 0) x (+ x y)))");
        let d = r.diagnostics.iter().find(|d| d.code == "E0004").unwrap();
        assert_eq!(d.message, "unbound variable `y`");
        assert_eq!(d.location(), "f:body.else.arg1");
    }

    #[test]
    fn unknown_function_is_e0005() {
        // Unreachable from source text (the parser resolves operators),
        // but reachable through programmatically built defs.
        use ppe_lang::{Expr, Symbol};
        let def = FunDef::new(
            Symbol::intern("f"),
            vec![Symbol::intern("x")],
            Expr::Call(
                Symbol::intern("ghost"),
                vec![Expr::Var(Symbol::intern("x"))],
            ),
        );
        let diags = check_defs(&[def]);
        assert!(diags.iter().any(|d| d.code == "E0005"), "{diags:?}");
    }

    #[test]
    fn call_arity_mismatch_is_e0006() {
        let r = check_source("(define (f x) (g x x)) (define (g y) y)");
        let d = r.diagnostics.iter().find(|d| d.code == "E0006").unwrap();
        assert_eq!(d.message, "`g` expects 1 arguments but is called with 2");
    }

    #[test]
    fn shadowing_is_w0001() {
        let r = check_source("(define (f x) (let ((x (+ x 1))) x))");
        assert!(r.diagnostics.iter().any(|d| d.code == "W0001"));
        assert!(!r.has_errors());
    }

    #[test]
    fn unconditional_recursion_is_w0002() {
        let r = check_source("(define (spin n) (spin (+ n 1)))");
        let d = r.diagnostics.iter().find(|d| d.code == "W0002").unwrap();
        assert!(
            d.message.contains("no reachable base case"),
            "{}",
            d.message
        );
    }

    #[test]
    fn unused_parameter_is_w0003_and_dead_let_is_w0004() {
        let r = check_source("(define (f x u) (let ((dead 42)) x))");
        let cs: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(cs.contains(&"W0003"), "{cs:?}");
        assert!(cs.contains(&"W0004"), "{cs:?}");
    }

    #[test]
    fn non_droppable_dead_binding_is_not_w0004() {
        // (g x) may diverge: the optimizer keeps it, so must we.
        let r = check_source(
            "(define (f x) (let ((dead (g x))) x)) (define (g x) (if (= x 0) 0 (g (- x 1))))",
        );
        assert!(!r.diagnostics.iter().any(|d| d.code == "W0004"));
    }

    #[test]
    fn clean_corpus_programs_are_clean() {
        for src in [
            "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
             (define (dotprod a b n)
               (if (= n 0) 0.0 (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
        ] {
            let r = check_source(src);
            assert!(r.is_clean(), "{src}: {:?}", r.diagnostics);
        }
    }

    #[test]
    fn static_recursion_under_bta_is_w0002() {
        let src = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";
        let program = ppe_lang::parse_program(src).unwrap();
        let analysis = analyze(
            &program,
            &FacetSet::new(),
            &[AbstractInput::dynamic(), AbstractInput::static_()],
        )
        .unwrap();
        let diags = check_unfolding(&program, &analysis);
        let d = diags.iter().find(|d| d.code == "W0002").unwrap();
        assert!(d.message.contains("purely static"), "{}", d.message);
        // With n dynamic the call specializes instead: no warning.
        let analysis = analyze(
            &program,
            &FacetSet::new(),
            &[AbstractInput::dynamic(), AbstractInput::dynamic()],
        )
        .unwrap();
        assert!(check_unfolding(&program, &analysis).is_empty());
    }

    #[test]
    fn report_counts() {
        let r = check_source("(define (f x u) (+ x y))");
        assert_eq!(r.errors(), 1); // unbound y
        assert_eq!(r.warnings(), 1); // unused u
        assert!(!r.is_clean());
        assert!(r.has_errors());
    }
}
