//! Pass 1: well-formedness of raw definitions.
//!
//! Operates on the *lenient* parse ([`ppe_lang::parse_defs`]) so that
//! every semantic problem — not just the first — is reported with a
//! structured code and location. The conditions mirror
//! `Program::validate`, which the engines run as a gate; the point of
//! duplicating them here is completeness (all findings at once) and
//! structure (codes, severities, paths) rather than a single string.

use std::collections::{HashMap, HashSet};

use ppe_lang::diag::Diagnostic;
use ppe_lang::{Expr, FunDef, Symbol};

/// Checks duplicate definitions, duplicate parameters, unbound variables,
/// unknown functions, call-site arity, and shadowing over raw defs.
pub fn check(defs: &[FunDef], out: &mut Vec<Diagnostic>) {
    if defs.is_empty() {
        out.push(Diagnostic::error("E0001", "program has no definitions"));
        return;
    }
    // Known functions and their arity: first definition wins, duplicates
    // are reported but still resolvable at call sites.
    let mut arity: HashMap<Symbol, usize> = HashMap::new();
    let mut seen: HashSet<Symbol> = HashSet::new();
    for def in defs {
        if !seen.insert(def.name) {
            out.push(
                Diagnostic::error("E0002", format!("duplicate definition of `{}`", def.name))
                    .in_function(def.name),
            );
        }
        arity.entry(def.name).or_insert(def.arity());
    }
    for def in defs {
        let mut params_seen = HashSet::new();
        for p in &def.params {
            if !params_seen.insert(*p) {
                out.push(
                    Diagnostic::error(
                        "E0003",
                        format!("duplicate parameter `{p}` in definition of `{}`", def.name),
                    )
                    .in_function(def.name),
                );
            }
        }
        let mut scope: Vec<Symbol> = def.params.clone();
        check_expr(&def.body, &mut scope, &arity, def.name, "body", out);
    }
}

fn check_expr(
    e: &Expr,
    scope: &mut Vec<Symbol>,
    arity: &HashMap<Symbol, usize>,
    function: Symbol,
    path: &str,
    out: &mut Vec<Diagnostic>,
) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(x) => {
            if !scope.contains(x) {
                out.push(
                    Diagnostic::error("E0004", format!("unbound variable `{x}`"))
                        .in_function(function)
                        .at_path(path),
                );
            }
        }
        Expr::FnRef(f) => {
            if !arity.contains_key(f) {
                out.push(
                    Diagnostic::error("E0005", format!("reference to unknown function `{f}`"))
                        .in_function(function)
                        .at_path(path),
                );
            }
        }
        Expr::Prim(_, args) => {
            for (i, a) in args.iter().enumerate() {
                check_expr(a, scope, arity, function, &format!("{path}.arg{i}"), out);
            }
        }
        Expr::Call(f, args) => {
            match arity.get(f) {
                None => out.push(
                    Diagnostic::error("E0005", format!("call to unknown function `{f}`"))
                        .in_function(function)
                        .at_path(path),
                ),
                Some(n) if *n != args.len() => out.push(
                    Diagnostic::error(
                        "E0006",
                        format!(
                            "`{f}` expects {n} arguments but is called with {}",
                            args.len()
                        ),
                    )
                    .in_function(function)
                    .at_path(path),
                ),
                Some(_) => {}
            }
            for (i, a) in args.iter().enumerate() {
                check_expr(a, scope, arity, function, &format!("{path}.arg{i}"), out);
            }
        }
        Expr::If(c, t, f) => {
            check_expr(c, scope, arity, function, &format!("{path}.cond"), out);
            check_expr(t, scope, arity, function, &format!("{path}.then"), out);
            check_expr(f, scope, arity, function, &format!("{path}.else"), out);
        }
        Expr::Let(x, b, body) => {
            check_expr(b, scope, arity, function, &format!("{path}.bound"), out);
            if scope.contains(x) {
                out.push(
                    Diagnostic::warning("W0001", format!("`{x}` shadows an enclosing binding"))
                        .in_function(function)
                        .at_path(path),
                );
            }
            scope.push(*x);
            check_expr(body, scope, arity, function, &format!("{path}.body"), out);
            scope.pop();
        }
        Expr::Lambda(params, body) => {
            for p in params {
                if scope.contains(p) {
                    out.push(
                        Diagnostic::warning(
                            "W0001",
                            format!("lambda parameter `{p}` shadows an enclosing binding"),
                        )
                        .in_function(function)
                        .at_path(path),
                    );
                }
            }
            let depth = scope.len();
            scope.extend(params.iter().copied());
            check_expr(body, scope, arity, function, &format!("{path}.lambda"), out);
            scope.truncate(depth);
        }
        Expr::App(f, args) => {
            check_expr(f, scope, arity, function, &format!("{path}.callee"), out);
            for (i, a) in args.iter().enumerate() {
                check_expr(a, scope, arity, function, &format!("{path}.arg{i}"), out);
            }
        }
    }
}
