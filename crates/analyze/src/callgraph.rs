//! Pass 2: call graph and unfold-safety.
//!
//! Two modes with one code (`W0002`):
//!
//! - **Structural** (no inputs needed): recursion not guarded by *any*
//!   conditional can never reach a base case — specialization and plain
//!   evaluation both diverge. The detection is
//!   [`ppe_online::preflight::unguarded_recursion`], shared with the
//!   online engine so both agree on what "structurally unbounded" means.
//! - **Binding-time aware** (given a facet [`Analysis`]): a recursive call
//!   annotated `Unfold` whose every controlling conditional is static is
//!   the classic offline-PE infinite-unfolding risk — the specializer will
//!   keep unfolding as long as the static data says so, with nothing
//!   dynamic to force residualization. Termination then rests entirely on
//!   the static recursion terminating; the runtime Governor's fuel is the
//!   backstop. This is exactly the condition Figure 4's `Unfold`
//!   annotation does *not* check, so the analyzer surfaces it.

use std::collections::{HashMap, HashSet};

use ppe_lang::diag::Diagnostic;
use ppe_lang::{FunDef, Symbol};
use ppe_offline::{Analysis, AnnExpr, AnnKind, CallAction};

use crate::depgraph::collect_calls;

/// Structural unfold-safety over raw definitions: wraps the engine-shared
/// unguarded-recursion detection in `W0002` diagnostics. Works on the
/// lenient parse by building a `Program` only when the defs admit one;
/// otherwise (duplicates, empty) the structural pass is skipped — the
/// well-formedness errors already block everything downstream.
pub fn check_structural(defs: &[FunDef], out: &mut Vec<Diagnostic>) {
    let Ok(program) = ppe_lang::Program::new(defs.to_vec()) else {
        return;
    };
    for (f, g) in ppe_online::preflight::unguarded_recursion(&program) {
        let message = if f == g {
            format!("`{f}` calls itself outside every conditional: the recursion has no reachable base case")
        } else {
            format!("recursive call of `{g}` sits outside every conditional in `{f}`: the cycle has no reachable base case")
        };
        out.push(Diagnostic::warning("W0002", message).in_function(f));
    }
}

/// Binding-time-aware unfold-safety: reports every recursive call site
/// annotated `Unfold` that no dynamic conditional guards. `program`
/// supplies the call graph; `analysis` the annotations.
pub fn check_unfolding(
    program: &ppe_lang::Program,
    analysis: &Analysis,
    out: &mut Vec<Diagnostic>,
) {
    // Edge collection is shared with the dependency-graph pass
    // ([`crate::depgraph::collect_calls`]) so unfold-safety and
    // invalidation can never disagree about what "calls" means.
    let mut edges: HashMap<Symbol, HashSet<Symbol>> = HashMap::new();
    for def in program.defs() {
        let callees = edges.entry(def.name).or_default();
        collect_calls(&def.body, callees);
    }
    let mut names: Vec<Symbol> = analysis.annotated.keys().copied().collect();
    names.sort_by_key(|s| s.to_string());
    for name in names {
        let def = &analysis.annotated[&name];
        walk(&def.body, name, false, &edges, "body", out);
    }
}

fn walk(
    e: &AnnExpr,
    function: Symbol,
    under_dynamic: bool,
    edges: &HashMap<Symbol, HashSet<Symbol>>,
    path: &str,
    out: &mut Vec<Diagnostic>,
) {
    match &e.kind {
        AnnKind::Const(_) | AnnKind::Var(_) => {}
        AnnKind::Prim { args, .. } => {
            for (i, a) in args.iter().enumerate() {
                walk(
                    a,
                    function,
                    under_dynamic,
                    edges,
                    &format!("{path}.arg{i}"),
                    out,
                );
            }
        }
        AnnKind::If {
            cond,
            then_branch,
            else_branch,
            static_cond,
        } => {
            walk(
                cond,
                function,
                under_dynamic,
                edges,
                &format!("{path}.cond"),
                out,
            );
            let branches_dynamic = under_dynamic || !static_cond;
            walk(
                then_branch,
                function,
                branches_dynamic,
                edges,
                &format!("{path}.then"),
                out,
            );
            walk(
                else_branch,
                function,
                branches_dynamic,
                edges,
                &format!("{path}.else"),
                out,
            );
        }
        AnnKind::Call { f, args, action } => {
            for (i, a) in args.iter().enumerate() {
                walk(
                    a,
                    function,
                    under_dynamic,
                    edges,
                    &format!("{path}.arg{i}"),
                    out,
                );
            }
            let recursive = *f == function || reaches(*f, function, edges);
            if *action == CallAction::Unfold && recursive && !under_dynamic {
                out.push(
                    Diagnostic::warning(
                        "W0002",
                        format!(
                            "recursive call of `{f}` is annotated `Unfold` under purely static \
                             control: unfolding is bounded only by the static recursion \
                             terminating (runtime fuel is the backstop)"
                        ),
                    )
                    .in_function(function)
                    .at_path(path),
                );
            }
        }
        AnnKind::Let { bound, body, .. } => {
            walk(
                bound,
                function,
                under_dynamic,
                edges,
                &format!("{path}.bound"),
                out,
            );
            walk(
                body,
                function,
                under_dynamic,
                edges,
                &format!("{path}.body"),
                out,
            );
        }
    }
}

/// True iff `to` is reachable from `from` along call edges.
fn reaches(from: Symbol, to: Symbol, edges: &HashMap<Symbol, HashSet<Symbol>>) -> bool {
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    while let Some(f) = stack.pop() {
        if !seen.insert(f) {
            continue;
        }
        if let Some(next) = edges.get(&f) {
            if next.contains(&to) {
                return true;
            }
            stack.extend(next.iter().copied());
        }
    }
    false
}
