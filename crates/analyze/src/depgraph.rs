//! Pass 4: dependency graph, closure fingerprints, and change impact.
//!
//! The paper's correctness story (Definitions 5–7) makes a residual for
//! entry point `f` a function of `f`'s *reachable closure* only: the
//! definitions `f` can transitively call, plus the facet configuration.
//! Nothing outside that closure can influence the residual, so a sound
//! cache key for "specialize `f`" needs to pin down exactly the closure
//! — not the whole program. This module computes that key component:
//!
//! - a **call graph** over the definitions, built by the same
//!   [`collect_calls`] edge collector the unfold-safety pass uses (one
//!   builder, no drift);
//! - its **SCC condensation** (iterative Tarjan, so deep call chains
//!   cannot overflow the stack);
//! - a per-definition **closure fingerprint**: an order-independent
//!   combination of the *local* fingerprints ([`FunDef::fingerprint`],
//!   spelling-stable) of every definition reachable from it. Members of
//!   one SCC reach the same set, so they combine the same multiset and
//!   mutual recursion needs no special casing; sorting the reachable
//!   set by name before hashing makes the result independent of
//!   definition order and deterministic across runs *and processes* —
//!   which is what lets it key the disk tier.
//!
//! Local fingerprints deliberately use [`FunDef::fingerprint`] rather
//! than the hash-consed [`ppe_lang::term::Term`] fingerprint: the Term
//! interner mixes process-local symbol ids, which is fine for the VM's
//! in-process chunk cache (which keys its reachable-body component on
//! Term fingerprints) but would silently miss across restarts if
//! embedded in persistent keys.
//!
//! On top of the graph this module derives two diagnostics/reports:
//!
//! - [`check_dead_code`]: `W0005` for definitions unreachable from the
//!   entry point (`main`, i.e. the first definition);
//! - [`impact`]: given the graphs of an old and a new version of a
//!   program, classify every entry point as unchanged / added /
//!   invalidated, and for invalidated entries exhibit a shortest call
//!   path from the entry to a definition whose local fingerprint
//!   changed — the "why was my cache entry dropped" explanation behind
//!   `ppe check --impact`.

use std::collections::{HashMap, HashSet};

use ppe_lang::diag::Diagnostic;
use ppe_lang::{Expr, FunDef, Program, Symbol};

/// Direct-call edges of `e`: every function that evaluating (or
/// specializing) `e` may invoke. `Call` targets are the obvious edges;
/// `FnRef` also counts — a referenced function can flow to an `App` and
/// be applied, so a sound closure must include it. Shared by
/// `callgraph::check_unfolding` and [`DepGraph`] so the two passes can
/// never disagree about what "calls" means.
pub fn collect_calls(e: &Expr, out: &mut HashSet<Symbol>) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::FnRef(f) => {
            out.insert(*f);
        }
        Expr::Prim(_, args) => args.iter().for_each(|a| collect_calls(a, out)),
        Expr::Call(f, args) => {
            out.insert(*f);
            args.iter().for_each(|a| collect_calls(a, out));
        }
        Expr::If(c, t, f) => {
            collect_calls(c, out);
            collect_calls(t, out);
            collect_calls(f, out);
        }
        Expr::Let(_, b, body) => {
            collect_calls(b, out);
            collect_calls(body, out);
        }
        Expr::Lambda(_, body) => collect_calls(body, out),
        Expr::App(f, args) => {
            collect_calls(f, out);
            args.iter().for_each(|a| collect_calls(a, out));
        }
    }
}

/// The dependency graph of a program: call edges, SCC condensation, and
/// per-definition local + transitive-closure fingerprints.
///
/// Building one is `O(defs × edges)` (the per-definition reachability
/// walk dominates); programs here are small enough that this is
/// microseconds. The server builds one per distinct parsed source and
/// caches it alongside the parse.
#[derive(Debug)]
pub struct DepGraph {
    /// Definition names in definition order.
    names: Vec<Symbol>,
    /// Name → index into the parallel vectors.
    index: HashMap<Symbol, usize>,
    /// Per definition: callee indices, sorted by callee spelling and
    /// deduplicated. Calls to unknown functions carry no edge (they are
    /// `E0005` territory, not reachability).
    callees: Vec<Vec<usize>>,
    /// Per definition: spelling-stable [`FunDef::fingerprint`].
    local_fps: Vec<u64>,
    /// Per definition: closure fingerprint over its reachable set.
    closure_fps: Vec<u64>,
    /// Per definition: SCC id (reverse-topological-ish Tarjan order).
    scc_of: Vec<usize>,
    /// Number of SCCs.
    scc_count: usize,
}

impl DepGraph {
    /// Builds the graph for `program`.
    pub fn of_program(program: &Program) -> DepGraph {
        Self::of_defs(program.defs())
    }

    /// Builds the graph for a slice of definitions (first = entry point).
    /// Duplicate names keep the first occurrence, matching
    /// `Program::lookup`'s resolution.
    pub fn of_defs(defs: &[FunDef]) -> DepGraph {
        let names: Vec<Symbol> = defs.iter().map(|d| d.name).collect();
        let mut index = HashMap::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            index.entry(d.name).or_insert(i);
        }
        let callees: Vec<Vec<usize>> = defs
            .iter()
            .map(|d| {
                let mut targets = HashSet::new();
                collect_calls(&d.body, &mut targets);
                let mut out: Vec<usize> = targets
                    .iter()
                    .filter_map(|f| index.get(f).copied())
                    .collect();
                out.sort_by_key(|&j| names[j].as_str());
                out.dedup();
                out
            })
            .collect();
        let local_fps: Vec<u64> = defs.iter().map(FunDef::fingerprint).collect();
        let (scc_of, scc_count) = tarjan_sccs(&callees);
        let closure_fps = (0..defs.len())
            .map(|i| {
                let mut reach = reachable_from(i, &callees);
                reach.sort_by_key(|&j| names[j].as_str());
                let mut h = Fnv64::new();
                h.write_u64(reach.len() as u64);
                for j in reach {
                    h.write_str(names[j].as_str());
                    h.write_u64(local_fps[j]);
                }
                h.finish()
            })
            .collect();
        DepGraph {
            names,
            index,
            callees,
            local_fps,
            closure_fps,
            scc_of,
            scc_count,
        }
    }

    /// Definition names, in definition order.
    pub fn names(&self) -> &[Symbol] {
        &self.names
    }

    /// The closure fingerprint of `f`: an order-independent hash of the
    /// `(name, local fingerprint)` pairs of every definition reachable
    /// from `f` (including `f` itself). `None` when `f` is not defined.
    pub fn closure_fingerprint(&self, f: Symbol) -> Option<u64> {
        self.index.get(&f).map(|&i| self.closure_fps[i])
    }

    /// The local (single-definition) fingerprint of `f`.
    pub fn local_fingerprint(&self, f: Symbol) -> Option<u64> {
        self.index.get(&f).map(|&i| self.local_fps[i])
    }

    /// Direct callees of `f`, sorted by spelling.
    pub fn callees(&self, f: Symbol) -> Option<Vec<Symbol>> {
        self.index
            .get(&f)
            .map(|&i| self.callees[i].iter().map(|&j| self.names[j]).collect())
    }

    /// Every definition reachable from `f` (including `f`), sorted by
    /// spelling. `None` when `f` is not defined.
    pub fn reachable(&self, f: Symbol) -> Option<Vec<Symbol>> {
        let &i = self.index.get(&f)?;
        let mut reach: Vec<Symbol> = reachable_from(i, &self.callees)
            .into_iter()
            .map(|j| self.names[j])
            .collect();
        reach.sort_by_key(|s| s.as_str());
        Some(reach)
    }

    /// The SCC id of `f` (Tarjan discovery order; callees' SCCs are
    /// numbered no later than their callers').
    pub fn scc_of(&self, f: Symbol) -> Option<usize> {
        self.index.get(&f).map(|&i| self.scc_of[i])
    }

    /// Number of strongly connected components.
    pub fn scc_count(&self) -> usize {
        self.scc_count
    }

    /// Definitions unreachable from the entry point (the first
    /// definition), in definition order. Empty for an empty def list.
    pub fn unreachable_from_entry(&self) -> Vec<Symbol> {
        if self.names.is_empty() {
            return Vec::new();
        }
        let live: HashSet<usize> = reachable_from(0, &self.callees).into_iter().collect();
        (0..self.names.len())
            .filter(|i| !live.contains(i))
            .map(|i| self.names[i])
            .collect()
    }

    /// A shortest call path `from = g₀ → g₁ → … → to` (BFS over
    /// spelling-sorted callees, so deterministic). `None` when either
    /// endpoint is undefined or `to` is unreachable from `from`.
    pub fn call_path(&self, from: Symbol, to: Symbol) -> Option<Vec<Symbol>> {
        let &start = self.index.get(&from)?;
        let &goal = self.index.get(&to)?;
        if start == goal {
            return Some(vec![from]);
        }
        let mut prev: HashMap<usize, usize> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        let mut seen = HashSet::from([start]);
        while let Some(v) = queue.pop_front() {
            for &w in &self.callees[v] {
                if seen.insert(w) {
                    prev.insert(w, v);
                    if w == goal {
                        let mut path = vec![w];
                        let mut cur = w;
                        while cur != start {
                            cur = prev[&cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path.into_iter().map(|i| self.names[i]).collect());
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

/// All indices reachable from `start` (including `start`) by DFS.
fn reachable_from(start: usize, callees: &[Vec<usize>]) -> Vec<usize> {
    let mut seen = HashSet::from([start]);
    let mut stack = vec![start];
    let mut out = vec![start];
    while let Some(v) = stack.pop() {
        for &w in &callees[v] {
            if seen.insert(w) {
                out.push(w);
                stack.push(w);
            }
        }
    }
    out
}

/// Iterative Tarjan: returns `(scc id per node, scc count)`. Iterative
/// because object programs can be machine-generated with call chains
/// deeper than the default thread stack.
fn tarjan_sccs(callees: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = callees.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut next_disc = 0usize;
    let mut scc_count = 0usize;
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = next_disc;
        low[root] = next_disc;
        next_disc += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&(v, i)) = work.last() {
            if i < callees[v].len() {
                work.last_mut().expect("non-empty").1 += 1;
                let w = callees[v][i];
                if disc[w] == usize::MAX {
                    disc[w] = next_disc;
                    low[w] = next_disc;
                    next_disc += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == disc[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

/// `W0005`: definitions unreachable from the entry point. Emitted from
/// the condensed graph so mutually recursive dead clusters are reported
/// even though they "call each other". Skipped when the defs don't form
/// a valid `Program` (duplicates/empty) — well-formedness errors already
/// block everything downstream.
pub fn check_dead_code(defs: &[FunDef], out: &mut Vec<Diagnostic>) {
    let Ok(program) = Program::new(defs.to_vec()) else {
        return;
    };
    let graph = DepGraph::of_program(&program);
    let entry = program.main().name;
    for name in graph.unreachable_from_entry() {
        out.push(
            Diagnostic::warning(
                "W0005",
                format!(
                    "`{name}` is dead code: unreachable from the entry point `{entry}` \
                     (no call path from `{entry}` reaches it)"
                ),
            )
            .in_function(name),
        );
    }
}

/// How one entry point is affected by an edit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryImpact {
    /// Closure fingerprint unchanged: every cached residual keyed on it
    /// is still valid.
    Unchanged,
    /// The definition is new in the edited program.
    Added,
    /// Something reachable changed.
    Invalidated {
        /// A reachable definition whose local fingerprint differs (or is
        /// new in the edited program).
        changed: Symbol,
        /// A shortest call path from the entry to `changed`, inclusive
        /// of both ends.
        via: Vec<Symbol>,
    },
}

/// Per-entry impact of editing `old` into `new`, plus the definitions
/// that were removed outright.
#[derive(Clone, Debug)]
pub struct ImpactReport {
    /// One row per definition of the *new* program, sorted by name.
    pub entries: Vec<(Symbol, EntryImpact)>,
    /// Definitions present in `old` but not in `new`, sorted by name.
    pub removed: Vec<Symbol>,
}

/// Classifies every definition of `new` against `old`.
///
/// Soundness of the `Unchanged` verdict is exactly the closure-key
/// argument: equal closure fingerprints mean (modulo hash collisions)
/// the reachable definitions are pairwise identical, and by Definitions
/// 5–7 the residual for the entry depends on nothing else. For
/// `Invalidated` entries a witness always exists: if every definition
/// reachable in `new` had an unchanged local fingerprint, the bodies —
/// hence the edges, hence the reachable set, hence the closure
/// fingerprint — would all be unchanged, contradicting the fingerprint
/// mismatch. The BFS finds the nearest such witness.
pub fn impact(old: &DepGraph, new: &DepGraph) -> ImpactReport {
    let old_names: HashSet<Symbol> = old.names().iter().copied().collect();
    let new_names: HashSet<Symbol> = new.names().iter().copied().collect();

    let mut entries: Vec<(Symbol, EntryImpact)> = new_names
        .iter()
        .map(|&f| {
            let verdict = if !old_names.contains(&f) {
                EntryImpact::Added
            } else if old.closure_fingerprint(f) == new.closure_fingerprint(f) {
                EntryImpact::Unchanged
            } else {
                // BFS from f (spelling-sorted callees → deterministic)
                // to the nearest definition whose local fingerprint is
                // new or changed.
                let witness = new
                    .reachable(f)
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|&d| old.local_fingerprint(d) != new.local_fingerprint(d))
                    .filter_map(|d| new.call_path(f, d))
                    .min_by_key(|path| (path.len(), path.last().map(|s| s.as_str())));
                match witness {
                    Some(via) => EntryImpact::Invalidated {
                        changed: *via.last().expect("path is non-empty"),
                        via,
                    },
                    // Unreachable in practice (see the doc argument);
                    // degrade to blaming the entry itself.
                    None => EntryImpact::Invalidated {
                        changed: f,
                        via: vec![f],
                    },
                }
            };
            (f, verdict)
        })
        .collect();
    entries.sort_by_key(|(f, _)| f.as_str());

    let mut removed: Vec<Symbol> = old_names.difference(&new_names).copied().collect();
    removed.sort_by_key(|s| s.as_str());
    ImpactReport { entries, removed }
}

/// The same FNV-1a combiner `ppe_lang` uses for spelling-stable hashes;
/// duplicated here (it is four lines of arithmetic) rather than exported
/// as public lang API.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, n: u64) {
        for b in n.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Length-prefixed, matching `ppe_lang`'s convention.
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.as_bytes() {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppe_lang::parse_program;

    fn graph(src: &str) -> DepGraph {
        DepGraph::of_program(&parse_program(src).unwrap())
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const CHAIN: &str = "(define (top x) (mid x))\n\
                         (define (mid x) (leaf x))\n\
                         (define (leaf x) (+ x 1))\n\
                         (define (orphan x) (* x 2))";

    #[test]
    fn reachability_and_dead_code() {
        let g = graph(CHAIN);
        assert_eq!(
            g.reachable(sym("top")).unwrap(),
            vec![sym("leaf"), sym("mid"), sym("top")]
        );
        assert_eq!(g.reachable(sym("leaf")).unwrap(), vec![sym("leaf")]);
        assert_eq!(g.unreachable_from_entry(), vec![sym("orphan")]);
        assert_eq!(g.closure_fingerprint(sym("missing")), None);
    }

    #[test]
    fn closure_fp_ignores_unreachable_edits_but_sees_reachable_ones() {
        let g = graph(CHAIN);
        let edited_orphan = graph(&CHAIN.replace("(* x 2)", "(* x 3)"));
        let edited_leaf = graph(&CHAIN.replace("(+ x 1)", "(+ x 9)"));
        let top = sym("top");
        assert_eq!(
            g.closure_fingerprint(top),
            edited_orphan.closure_fingerprint(top),
            "editing a def unreachable from `top` must not move its closure fp"
        );
        assert_ne!(
            g.closure_fingerprint(top),
            edited_leaf.closure_fingerprint(top),
            "editing a def `top` reaches must move its closure fp"
        );
        // The leaf edit invalidates the whole chain above it…
        assert_ne!(
            g.closure_fingerprint(sym("mid")),
            edited_leaf.closure_fingerprint(sym("mid"))
        );
        // …but not the sibling orphan.
        assert_eq!(
            g.closure_fingerprint(sym("orphan")),
            edited_leaf.closure_fingerprint(sym("orphan"))
        );
    }

    #[test]
    fn closure_fp_is_definition_order_independent() {
        let g = graph(CHAIN);
        let shuffled = graph(
            "(define (top x) (mid x))\n\
             (define (orphan x) (* x 2))\n\
             (define (leaf x) (+ x 1))\n\
             (define (mid x) (leaf x))",
        );
        for f in ["top", "mid", "leaf", "orphan"] {
            assert_eq!(
                g.closure_fingerprint(sym(f)),
                shuffled.closure_fingerprint(sym(f)),
                "closure fp of `{f}` must not depend on definition order"
            );
        }
    }

    #[test]
    fn mutual_recursion_forms_one_scc_with_equal_closure_fps_per_member_set() {
        let g = graph(
            "(define (evn n) (if (= n 0) 1 (odd (- n 1))))\n\
             (define (odd n) (if (= n 0) 0 (evn (- n 1))))",
        );
        assert_eq!(g.scc_of(sym("evn")), g.scc_of(sym("odd")));
        assert_eq!(g.scc_count(), 1);
        // Both members reach the same set, and the closure hash is over
        // the reachable *set* (not the starting point), so it is
        // identical for every member of an SCC.
        assert_eq!(
            g.closure_fingerprint(sym("evn")),
            g.closure_fingerprint(sym("odd"))
        );
    }

    #[test]
    fn fnref_counts_as_an_edge() {
        // A bare known-function name parses as `Expr::FnRef`.
        let g = graph(
            "(define (main x) (let ((g helper)) (g x)))\n\
             (define (helper x) (+ x 1))",
        );
        assert_eq!(g.callees(sym("main")).unwrap(), vec![sym("helper")]);
        assert!(g.unreachable_from_entry().is_empty());
    }

    #[test]
    fn call_path_is_shortest_and_deterministic() {
        let g = graph(
            "(define (a x) (if (b x) (c x) x))\n\
             (define (b x) (d x))\n\
             (define (c x) (d x))\n\
             (define (d x) x)",
        );
        assert_eq!(
            g.call_path(sym("a"), sym("d")).unwrap(),
            vec![sym("a"), sym("b"), sym("d")],
            "ties break toward the alphabetically first callee"
        );
        assert_eq!(g.call_path(sym("d"), sym("a")), None);
        assert_eq!(g.call_path(sym("a"), sym("a")).unwrap(), vec![sym("a")]);
    }

    #[test]
    fn impact_classifies_entries() {
        let old = graph(CHAIN);
        let new = graph(&format!(
            "{}\n(define (fresh x) x)",
            CHAIN.replace("(+ x 1)", "(+ x 9)")
        ));
        let report = impact(&old, &new);
        let by_name: HashMap<Symbol, EntryImpact> = report.entries.into_iter().collect();
        assert_eq!(by_name[&sym("fresh")], EntryImpact::Added);
        assert_eq!(by_name[&sym("orphan")], EntryImpact::Unchanged);
        assert_eq!(
            by_name[&sym("leaf")],
            EntryImpact::Invalidated {
                changed: sym("leaf"),
                via: vec![sym("leaf")],
            }
        );
        assert_eq!(
            by_name[&sym("top")],
            EntryImpact::Invalidated {
                changed: sym("leaf"),
                via: vec![sym("top"), sym("mid"), sym("leaf")],
            }
        );
        assert!(report.removed.is_empty());
        let shrunk = impact(&new, &old);
        assert_eq!(shrunk.removed, vec![sym("fresh")]);
    }

    #[test]
    fn dead_code_diagnostic_names_entry_and_orphan() {
        let program = parse_program(CHAIN).unwrap();
        let mut out = Vec::new();
        check_dead_code(program.defs(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "W0005");
        assert!(out[0].message.contains("`orphan`"), "{}", out[0].message);
        assert!(out[0].message.contains("`top`"), "{}", out[0].message);
    }
}
