; power: the classic specialization benchmark. With `n` static the
; recursion unrolls completely (and `ppe check <file> _ 5` reports the
; W0002 unfold-safety warning that unfolding is bounded only by the
; static counter reaching zero).
(define (power x n)
  (if (= n 0)
      1
      (* x (power x (- n 1)))))
