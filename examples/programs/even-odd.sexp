; even-odd: mutual recursion, guarded by a conditional in each function,
; so the structural unfold-safety pass stays quiet.
(define (even n)
  (if (= n 0)
      #t
      (odd (- n 1))))
(define (odd n)
  (if (= n 0)
      #f
      (even (- n 1))))
