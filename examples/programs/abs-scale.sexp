; abs-scale: branches on the sign of `x`, so the *sign* facet decides the
; conditional statically whenever the input's sign is known even though
; its value is not (e.g. `ppe check abs-scale.sexp _:sign=neg 10`).
(define (abs-scale x k)
  (if (< x 0)
      (* (- 0 x) k)
      (* x k)))
