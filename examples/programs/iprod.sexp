; iprod: the paper's Figure 9 inner product. Specializing on the *size*
; facet of the vectors (not their contents) yields the fully unrolled
; dot product of Figure 8.
(define (iprod a b)
  (let ((n (vsize a)))
    (dotprod a b n)))
(define (dotprod a b n)
  (if (= n 0)
      0.0
      (+ (* (vref a n) (vref b n))
         (dotprod a b (- n 1)))))
