//! Sign-facet-driven specialization of a numerical kernel: the
//! "properties trigger optimizations" story of Section 3.2, online and
//! offline.
//!
//! A piecewise Chebyshev-like step function guards every operation on the
//! sign of its argument; knowing only "x is negative" collapses the whole
//! decision tree.
//!
//! ```sh
//! cargo run --example sign_analysis
//! ```

use ppe::core::facets::{SignFacet, SignVal};
use ppe::core::{AbsVal, FacetSet};
use ppe::lang::{parse_program, pretty_program, Evaluator, Value};
use ppe::offline::{analyze, AbstractInput, OfflinePe};
use ppe::online::{OnlinePe, PeInput};

const KERNEL: &str = "(define (kernel x steps)
       (if (= steps 0)
           x
           (kernel (step x) (- steps 1))))
     (define (step x)
       (if (< x 0)
           (if (< (* x x) 0) 0 (neg x))
           (+ x 1)))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(KERNEL)?;
    let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);

    println!("source:\n{program}");

    // Online: x dynamic-but-negative, 3 iterations.
    let inputs = [
        PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg)),
        PeInput::known(Value::Int(3)),
    ];
    let online = OnlinePe::new(&program, &facets).specialize_main(&inputs)?;
    println!(
        "online residual (x < 0, steps = 3):\n{}",
        pretty_program(&online.program)
    );
    // After one step, neg x is pos; subsequent steps take the + branch:
    // every sign test disappears.
    assert!(!pretty_program(&online.program).contains("(< "));

    // Offline: the analysis proves the *inner* guard (< (* x x) 0) static
    // (x² is never negative) even though x itself is dynamic.
    let analysis = analyze(
        &program,
        &facets,
        &[
            AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg)),
            AbstractInput::static_(),
        ],
    )?;
    println!("facet analysis report:\n{}", analysis.report(&program));
    let offline = OfflinePe::new(&program, &facets, &analysis).specialize(&inputs)?;
    // The offline residual is *coarser* than the online one: Figure 4's
    // analysis is monovariant — `kernel`'s recursive call feeds a
    // fully-dynamic product back into its own signature, so `step`'s body
    // is annotated without sign information. This online/offline precision
    // gap is inherent to the paper's offline strategy (Section 5 trades
    // precision for a cheap, reusable specialization phase).
    println!(
        "offline residual (coarser — monovariant analysis):\n{}",
        pretty_program(&offline.program)
    );

    // Both residuals behave like the source.
    for x in [-7i64, -1, -100] {
        let expected = Evaluator::new(&program).run_main(&[Value::Int(x), Value::Int(3)])?;
        let got_on = Evaluator::new(&online.program).run_main(&[Value::Int(x)])?;
        let got_off = Evaluator::new(&offline.program).run_main(&[Value::Int(x)])?;
        assert_eq!(expected, got_on);
        assert_eq!(expected, got_off);
        println!("kernel({x}, 3) = {expected} ✓ (source = online = offline)");
    }
    Ok(())
}
