//! Constraint propagation from conditional tests — the future work the
//! paper sketches at the end of Section 4.4: "Redfun is able to extract
//! properties from the predicate of a conditional expression. Then, these
//! properties and their negation are propagated to the consequent and
//! alternative branches respectively."
//!
//! With [`ppe::online::PeConfig::propagate_constraints`] enabled, residual
//! tests refine the facet values of the variables they mention — the Sign
//! and Range facets implement [`ppe::core::Facet::assume`] — and `(= x c)`
//! binds `x` to `c` in the consequent.
//!
//! ```sh
//! cargo run --example constraints
//! ```

use ppe::core::facets::{RangeFacet, SignFacet};
use ppe::core::FacetSet;
use ppe::lang::{parse_program, pretty_program, Evaluator, Value};
use ppe::online::{OnlinePe, PeConfig, PeInput};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A clamping function full of redundant checks, as produced by naive
    // code generation or macro expansion.
    let program = parse_program(
        "(define (clamp x lo hi)
           (if (< x lo)
               (if (< x hi) lo lo)
               (if (< hi x)
                   (if (< lo x) hi hi)
                   (if (< x lo) 0 x))))",
    )?;
    println!("source:\n{program}");

    let facets = FacetSet::with_facets(vec![Box::new(SignFacet), Box::new(RangeFacet)]);

    // Without constraint propagation nothing reduces: x, lo, hi are all
    // dynamic.
    let plain = OnlinePe::new(&program, &facets).specialize_main(&[
        PeInput::dynamic(),
        PeInput::known(Value::Int(0)),
        PeInput::known(Value::Int(100)),
    ])?;
    println!(
        "without constraint propagation (lo=0, hi=100):\n{}",
        pretty_program(&plain.program)
    );

    // With it, each branch knows the tests dominating it: the inner
    // conditionals all die.
    let config = PeConfig {
        propagate_constraints: true,
        ..PeConfig::default()
    };
    let refined = OnlinePe::with_config(&program, &facets, config).specialize_main(&[
        PeInput::dynamic(),
        PeInput::known(Value::Int(0)),
        PeInput::known(Value::Int(100)),
    ])?;
    println!(
        "with constraint propagation:\n{}",
        pretty_program(&refined.program)
    );

    let plain_ifs = pretty_program(&plain.program).matches("(if").count();
    let refined_ifs = pretty_program(&refined.program).matches("(if").count();
    println!("conditionals: {plain_ifs} without propagation, {refined_ifs} with");
    assert!(refined_ifs < plain_ifs);

    // Behaviour is unchanged.
    for x in [-5i64, 0, 50, 100, 105] {
        let expected =
            Evaluator::new(&program).run_main(&[Value::Int(x), Value::Int(0), Value::Int(100)])?;
        let got = Evaluator::new(&refined.program).run_main(&[Value::Int(x)])?;
        assert_eq!(expected, got);
        println!("clamp({x:>4}, 0, 100) = {got}");
    }
    Ok(())
}
