//! The paper's Section 6 end to end: the inner-product program (Figure 7)
//! specialized with respect to the *size* of its vectors, online
//! (Section 6.1) and offline (Section 6.2), both reproducing the residual
//! program of Figure 8.
//!
//! ```sh
//! cargo run --example inner_product
//! ```

use ppe::core::facets::SizeFacet;
use ppe::core::{size_of, FacetSet};
use ppe::lang::{parse_program, pretty_program, Evaluator, Value};
use ppe::offline::{analyze, AbstractInput, OfflinePe};
use ppe::online::{OnlinePe, PeInput};

/// Figure 7 of the paper.
const FIGURE_7: &str = "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
     (define (dotprod a b n)
       (if (= n 0) 0.0
           (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(FIGURE_7)?;
    let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);
    let inputs = [
        PeInput::dynamic().with_facet("size", size_of(3)),
        PeInput::dynamic().with_facet("size", size_of(3)),
    ];

    println!("== Figure 7: source program ==\n{program}");

    // Online parameterized partial evaluation (Section 6.1).
    let online = OnlinePe::new(&program, &facets).specialize_main(&inputs)?;
    println!(
        "== Figure 8: online residual (size = 3) ==\n{}",
        pretty_program(&online.program)
    );

    // Offline: facet analysis (Figure 4 / Figure 9), then specialization.
    let abstract_inputs: Vec<AbstractInput> = inputs
        .iter()
        .map(|i| Ok(AbstractInput::of_product(i.to_product(&facets)?)))
        .collect::<Result<_, ppe::online::PeError>>()?;
    let analysis = analyze(&program, &facets, &abstract_inputs)?;
    println!(
        "== facet analysis reached its fixpoint in {} iteration(s) ==",
        analysis.iterations
    );
    let offline = OfflinePe::new(&program, &facets, &analysis).specialize(&inputs)?;
    println!(
        "== offline residual ==\n{}",
        pretty_program(&offline.program)
    );

    assert_eq!(
        pretty_program(&online.program),
        pretty_program(&offline.program),
        "online and offline must agree"
    );
    println!("online and offline residuals agree ✓");

    // And the residual computes the same inner products as the source.
    let a = Value::vector(vec![
        Value::Float(1.0),
        Value::Float(2.0),
        Value::Float(3.0),
    ]);
    let b = Value::vector(vec![
        Value::Float(4.0),
        Value::Float(5.0),
        Value::Float(6.0),
    ]);
    let source = Evaluator::new(&program).run_main(&[a.clone(), b.clone()])?;
    let residual = Evaluator::new(&online.program).run_main(&[a, b])?;
    println!("iprod([1 2 3], [4 5 6]) = {source} (source) = {residual} (residual)");
    assert_eq!(source, residual);

    // The analysis is reusable across sizes — the point of the offline
    // split: one analysis, many specializations.
    for n in [2i64, 5, 8] {
        let inputs = [
            PeInput::dynamic().with_facet("size", size_of(n)),
            PeInput::dynamic().with_facet("size", size_of(n)),
        ];
        let r = OfflinePe::new(&program, &facets, &analysis).specialize(&inputs)?;
        println!(
            "reused analysis for size {n}: residual has {} expression nodes",
            r.program.size()
        );
    }
    Ok(())
}
