//! Monovariant vs polyvariant facet analysis.
//!
//! Figure 4's analysis keeps one facet signature per function — joined over
//! all call sites — while its valuation function appeals to the precise
//! abstract denotation `ζ`. This example runs both on a program whose call
//! sites disagree, showing what the join loses and the minimal function
//! graph keeps.
//!
//! ```sh
//! cargo run --example polyvariant
//! ```

use ppe::core::facets::{SignFacet, SignVal};
use ppe::core::{AbsVal, FacetSet};
use ppe::lang::parse_program;
use ppe::offline::polyvariant::analyze_polyvariant;
use ppe::offline::{analyze, AbstractInput};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `scale` is called with a negative value from one site and a positive
    // value from the other.
    let program = parse_program(
        "(define (main a b)
           (+ (scale a) (scale b)))
         (define (scale x) (* x x))",
    )?;
    println!("program:\n{program}");
    let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
    let inputs = [
        AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Neg)),
        AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos)),
    ];

    // Monovariant (Figure 4 as written): the two call sites join.
    let mono = analyze(&program, &facets, &inputs)?;
    let sig = mono.signatures.get("scale".into()).unwrap();
    println!("monovariant signature of scale: {}", sig.display());
    assert_eq!(
        sig.args[0].facet(0).downcast_ref::<SignVal>(),
        Some(&SignVal::Top),
        "neg ⊔ pos joined away"
    );

    // Polyvariant (the precise ζ): one variant per abstract argument tuple.
    let poly = analyze_polyvariant(&program, &facets, &inputs)?;
    println!("polyvariant variants of scale:");
    for v in poly.signatures_of("scale".into()) {
        println!("  {}", v.display());
    }
    assert_eq!(poly.variant_count("scale".into()), 2);
    // Both variants prove the square is positive — and so does the sum.
    assert_eq!(
        poly.result.facet(0).downcast_ref::<SignVal>(),
        Some(&SignVal::Pos)
    );
    println!(
        "polyvariant result of main: {} (the monovariant result is {})",
        poly.result.display(),
        mono.signatures.get("main".into()).unwrap().result.display()
    );
    Ok(())
}
