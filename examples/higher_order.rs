//! Higher-order facet analysis (Section 5.5, Figures 5–6): abstract
//! values include abstract functions, dynamic conditionals between
//! functions produce the unknown operator `⊤_C`, and the functions it
//! hides are applied "in advance" so their signatures are still
//! collected.
//!
//! ```sh
//! cargo run --example higher_order
//! ```

use ppe::core::facets::{SignFacet, SignVal};
use ppe::core::{AbsVal, FacetSet};
use ppe::lang::parse_program;
use ppe::offline::higher_order::{analyze_higher_order, AbsValue};
use ppe::offline::AbstractInput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pipeline combinator program: `compose` is higher order, the
    // stage picked for the tail depends on a *dynamic* flag.
    let program = parse_program(
        "(define (main x flag)
           (let ((head (compose square negate)))
             ((if (< flag 0) head (compose head square)) x)))
         (define (compose f g) (lambda (v) (g (f v))))
         (define (square v) (* v v))
         (define (negate v) (neg v))",
    )?;
    println!("program:\n{program}");

    let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
    let analysis = analyze_higher_order(
        &program,
        &facets,
        &[
            AbstractInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos)),
            AbstractInput::dynamic(),
        ],
    )?;

    match &analysis.result {
        AbsValue::TopC => println!(
            "result: ⊤_C — the applied function depends on the dynamic flag,\n\
             exactly Figure 6's unknown-operator case"
        ),
        other => println!("result: {other:?}"),
    }

    println!("\ncollected facet signatures (Figures 5–6's SigEnv):");
    let mut sigs: Vec<_> = analysis.signatures.iter().collect();
    sigs.sort_by_key(|(f, _)| f.as_str());
    for (f, sig) in sigs {
        println!("  {f}: {}", sig.display());
    }

    // Even though *which* composition runs is unknown, both `square` and
    // `negate` got signatures via the in-advance application.
    assert!(analysis.signatures.get("square".into()).is_some());
    assert!(analysis.signatures.get("negate".into()).is_some());
    println!("\nsignatures were collected through ⊤_C ✓");
    Ok(())
}
