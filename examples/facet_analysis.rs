//! Reproduces Figure 9 of the paper: the abstract facet information
//! computed by facet analysis for the inner-product program when only the
//! *size* of the vectors is static.
//!
//! ```sh
//! cargo run --example facet_analysis
//! ```

use ppe::core::facets::{AbstractSizeVal, SizeFacet};
use ppe::core::{AbsVal, FacetSet};
use ppe::lang::parse_program;
use ppe::offline::{analyze, AbstractInput};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(
        "(define (iprod a b) (let ((n (vsize a))) (dotprod a b n)))
         (define (dotprod a b n)
           (if (= n 0) 0.0
               (+ (* (vref a n) (vref b n)) (dotprod a b (- n 1)))))",
    )?;
    let facets = FacetSet::with_facets(vec![Box::new(SizeFacet)]);

    // Figure 9's premise: "the actual value of both vectors is dynamic
    // but their size is static" — parameters A, B = ⟨Dyn, s⟩.
    let s = AbsVal::new(AbstractSizeVal::StaticSize);
    let analysis = analyze(
        &program,
        &facets,
        &[
            AbstractInput::dynamic().with_facet("size", s.clone()),
            AbstractInput::dynamic().with_facet("size", s),
        ],
    )?;

    println!("Figure 9 — abstract facet information after facet analysis");
    println!("(products are ⟨binding time, size⟩; Stat/Dyn as in the paper)\n");
    print!("{}", analysis.report(&program));

    println!("\nsignatures:");
    let mut sigs: Vec<_> = analysis.signatures.iter().collect();
    sigs.sort_by_key(|(f, _)| f.as_str());
    for (f, sig) in sigs {
        println!("  {f}: {}", sig.display());
    }
    Ok(())
}
