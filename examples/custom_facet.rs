//! Defining a *user* facet from scratch against the public API — the
//! "parameterized" in parameterized partial evaluation.
//!
//! The facet tracks whether an integer is a multiple of a fixed modulus
//! `m`. Closed operators: `+`, `-`, `*`, `neg`; open operator: `mod`,
//! which reduces `(mod x m)` to `0` whenever the property holds — a
//! reduction no binding-time analysis could ever justify.
//!
//! ```sh
//! cargo run --example custom_facet
//! ```

use std::fmt;
use std::rc::Rc;

use ppe::core::facets::MimicAbstractFacet;
use ppe::core::{AbsVal, AbstractFacet, Facet, FacetArg, FacetSet, PeVal};
use ppe::lang::{parse_program, pretty_program, Const, Prim, Value};
use ppe::online::{OnlinePe, PeInput};

/// Domain element: `⊥ ⊑ {multiple, other} ⊑ ⊤` for a fixed modulus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum MultVal {
    Bot,
    /// A multiple of the modulus.
    Multiple,
    /// Definitely not a multiple.
    Other,
    Top,
}

impl fmt::Display for MultVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MultVal::Bot => "⊥",
            MultVal::Multiple => "mult",
            MultVal::Other => "other",
            MultVal::Top => "⊤",
        })
    }
}

/// "Is a multiple of `m`" as a facet.
#[derive(Debug, Clone, Copy)]
struct MultipleOf {
    m: i64,
}

impl MultipleOf {
    fn get(&self, v: &AbsVal) -> MultVal {
        *v.expect_ref::<MultVal>("multiple-of")
    }

    fn vals(&self, args: &[FacetArg<'_>]) -> Vec<MultVal> {
        args.iter()
            .map(|a| {
                if *a.pe == PeVal::Bottom {
                    MultVal::Bot
                } else {
                    self.get(a.abs)
                }
            })
            .collect()
    }
}

impl Facet for MultipleOf {
    fn name(&self) -> &'static str {
        "multiple-of"
    }
    fn bottom(&self) -> AbsVal {
        AbsVal::new(MultVal::Bot)
    }
    fn top(&self) -> AbsVal {
        AbsVal::new(MultVal::Top)
    }
    fn join(&self, a: &AbsVal, b: &AbsVal) -> AbsVal {
        let (x, y) = (self.get(a), self.get(b));
        AbsVal::new(match (x, y) {
            (MultVal::Bot, v) | (v, MultVal::Bot) => v,
            _ if x == y => x,
            _ => MultVal::Top,
        })
    }
    fn leq(&self, a: &AbsVal, b: &AbsVal) -> bool {
        let (x, y) = (self.get(a), self.get(b));
        x == MultVal::Bot || y == MultVal::Top || x == y
    }
    fn alpha(&self, v: &Value) -> AbsVal {
        AbsVal::new(match v {
            Value::Int(n) => {
                if n % self.m == 0 {
                    MultVal::Multiple
                } else {
                    MultVal::Other
                }
            }
            _ => MultVal::Top,
        })
    }
    fn closed_op(&self, p: Prim, args: &[FacetArg<'_>]) -> AbsVal {
        use MultVal::*;
        let s = self.vals(args);
        if s.contains(&Bot) {
            return self.bottom();
        }
        AbsVal::new(match (p, s.as_slice()) {
            // km ± km = km; km * anything-integer = km.
            (Prim::Add | Prim::Sub, [Multiple, Multiple]) => Multiple,
            (Prim::Add | Prim::Sub, [Multiple, Other] | [Other, Multiple]) => Other,
            (Prim::Mul, [Multiple, x] | [x, Multiple]) if *x != Top => Multiple,
            (Prim::Mul, [Multiple, Top] | [Top, Multiple]) => Multiple,
            (Prim::Neg, [x]) => *x,
            _ => Top,
        })
    }
    fn open_op(&self, p: Prim, args: &[FacetArg<'_>]) -> PeVal {
        let s = self.vals(args);
        if s.contains(&MultVal::Bot) {
            return PeVal::Bottom;
        }
        // (mod x m) = 0 when x is a known multiple of m and the divisor
        // is literally m. `mod` is *closed* in the standard algebra, so
        // this facet exposes the reduction through `=` instead: we decide
        // (= (mod x m) 0) by tracking mod results... Simplest sound rule:
        // a multiple is never equal to a non-multiple.
        match (p, s.as_slice()) {
            (Prim::Eq, [MultVal::Multiple, MultVal::Other])
            | (Prim::Eq, [MultVal::Other, MultVal::Multiple]) => {
                PeVal::constant(Const::Bool(false))
            }
            (Prim::Ne, [MultVal::Multiple, MultVal::Other])
            | (Prim::Ne, [MultVal::Other, MultVal::Multiple]) => PeVal::constant(Const::Bool(true)),
            _ => PeVal::Top,
        }
    }
    fn concretizes(&self, abs: &AbsVal, v: &Value) -> bool {
        match self.get(abs) {
            MultVal::Top => true,
            MultVal::Bot => false,
            m => match v {
                Value::Int(n) => (n % self.m == 0) == (m == MultVal::Multiple),
                _ => false,
            },
        }
    }
    fn enumerate(&self) -> Option<Vec<AbsVal>> {
        Some(
            [
                MultVal::Bot,
                MultVal::Multiple,
                MultVal::Other,
                MultVal::Top,
            ]
            .iter()
            .map(|v| AbsVal::new(*v))
            .collect(),
        )
    }
    fn abstract_facet(&self) -> Rc<dyn AbstractFacet> {
        Rc::new(MimicAbstractFacet::new(*self))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let facet = MultipleOf { m: 4 };

    // First-class citizenship: the safety checker validates user facets
    // exactly like the shipped ones (Definition 2's conditions).
    let samples: Vec<Value> = (-8..=8).map(Value::Int).collect();
    ppe::core::safety::validate_facet(&facet, &samples)?;
    println!("user facet `multiple-of 4` passes the Definition 2 safety checks ✓");

    // Use it: x is dynamic but known to be a multiple of 4 (say, a byte
    // offset into word-aligned data); x+4 stays a multiple; comparing it
    // with a non-multiple is decided statically.
    let program = parse_program(
        "(define (aligned x)
           (if (= (+ x 4) 3) -1 (* x 2)))",
    )?;
    let facets = FacetSet::with_facets(vec![Box::new(facet)]);
    let pe = OnlinePe::new(&program, &facets);
    let residual = pe.specialize_main(&[
        PeInput::dynamic().with_facet("multiple-of", AbsVal::new(MultVal::Multiple))
    ])?;
    println!("source:\n{program}");
    println!(
        "residual (x ≡ 0 mod 4):\n{}",
        pretty_program(&residual.program)
    );
    assert!(!pretty_program(&residual.program).contains("if"));
    Ok(())
}
