//! Interpreter specialization — the first Futamura projection, powered by
//! a facet.
//!
//! A stack-machine interpreter for arithmetic bytecode is written *in the
//! object language*. Its program argument is a vector of opcodes — not a
//! constant, so conventional partial evaluation can do nothing with it.
//! The **Contents facet** tracks the exact elements of the vector, making
//! every `vref code pc` static: the dispatch loop unrolls completely and
//! the residual program is, in effect, the *compiled* bytecode.
//!
//! ```sh
//! cargo run --example interpreter
//! ```

use std::time::Instant;

use ppe::core::facets::ContentsFacet;
use ppe::core::FacetSet;
use ppe::lang::{parse_program, pretty_program, Evaluator, Value};
use ppe::online::{OnlinePe, PeInput};

/// The interpreter, in the object language. Opcodes:
/// `1 c` push constant; `2` add; `3` mul; `4` push the input `x`;
/// anything else halts with the top of stack.
const INTERPRETER: &str = "(define (run code x) (exec code x (mkvec 8) 0 1))
     (define (exec code x stack sp pc)
       (let ((op (vref code pc)))
         (if (= op 1)
             (exec code x (updvec stack (+ sp 1) (vref code (+ pc 1))) (+ sp 1) (+ pc 2))
         (if (= op 2)
             (exec code x
                   (updvec stack (- sp 1) (+ (vref stack (- sp 1)) (vref stack sp)))
                   (- sp 1) (+ pc 1))
         (if (= op 3)
             (exec code x
                   (updvec stack (- sp 1) (* (vref stack (- sp 1)) (vref stack sp)))
                   (- sp 1) (+ pc 1))
         (if (= op 4)
             (exec code x (updvec stack (+ sp 1) x) (+ sp 1) (+ pc 1))
             (vref stack sp)))))))";

/// A tiny source language for the bytecode compiler below.
enum Arith {
    X,
    Lit(i64),
    Add(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

/// Compiles an [`Arith`] expression to interpreter bytecode.
fn compile(e: &Arith, out: &mut Vec<Value>) {
    match e {
        Arith::X => out.push(Value::Int(4)),
        Arith::Lit(n) => {
            out.push(Value::Int(1));
            out.push(Value::Int(*n));
        }
        Arith::Add(a, b) => {
            compile(a, out);
            compile(b, out);
            out.push(Value::Int(2));
        }
        Arith::Mul(a, b) => {
            compile(a, out);
            compile(b, out);
            out.push(Value::Int(3));
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(INTERPRETER)?;

    // The subject program: (x*x + 3) * x.
    let expr = Arith::Mul(
        Box::new(Arith::Add(
            Box::new(Arith::Mul(Box::new(Arith::X), Box::new(Arith::X))),
            Box::new(Arith::Lit(3)),
        )),
        Box::new(Arith::X),
    );
    let mut code = Vec::new();
    compile(&expr, &mut code);
    code.push(Value::Int(5)); // halt
    let code = Value::vector(code);
    println!("bytecode: {code}");

    // Direct interpretation.
    let mut ev = Evaluator::new(&program);
    let direct = ev.run_main(&[code.clone(), Value::Int(5)])?;
    println!("interpreted: run(code, 5) = {direct}");
    assert_eq!(direct, Value::Int(140)); // (25 + 3) * 5

    // First Futamura projection: specialize the interpreter with respect
    // to the (statically known) bytecode. The Contents facet carries the
    // vector's elements, so dispatch (`vref code pc`, the opcode tests,
    // the pc arithmetic) evaporates.
    let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
    let residual = OnlinePe::new(&program, &facets)
        .specialize_main(&[PeInput::known(code.clone()), PeInput::dynamic()])?;
    println!(
        "\ncompiled (residual) program:\n{}",
        pretty_program(&residual.program)
    );
    let printed = pretty_program(&residual.program);
    assert!(!printed.contains("exec"), "dispatch loop must be gone");
    assert!(!printed.contains("(vref code"), "code reads must be gone");
    assert!(!printed.contains("if"), "opcode tests must be gone");

    // The compiled program agrees with the interpreter...
    let mut ev_res = Evaluator::new(&residual.program);
    for x in [-3i64, 0, 5, 11] {
        let a = ev.run_main(&[code.clone(), Value::Int(x)])?;
        let b = ev_res.run_main(&[Value::Int(x)])?;
        assert_eq!(a, b);
        println!("x = {x:>3}: interpreted {a} = compiled {b}");
    }

    // ...and is much faster (the dispatch overhead is gone).
    let reps = 2_000;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(ev.run_main(&[code.clone(), Value::Int(9)])?);
    }
    let t_interp = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(ev_res.run_main(&[Value::Int(9)])?);
    }
    let t_compiled = t0.elapsed();
    println!(
        "\ninterpreted: {:?} / {reps} runs; compiled: {:?} / {reps} runs ({:.1}× faster)",
        t_interp,
        t_compiled,
        t_interp.as_secs_f64() / t_compiled.as_secs_f64()
    );
    Ok(())
}
