; expect: E0101
; This program is well-formed — `ppe check` alone reports nothing. It
; exists for the binding-time certificate tests: analyzing it with a
; static `n` and then corrupting one annotation (e.g. retagging the
; dynamic `(* x ...)` as `Reduce`) must be rejected by the certificate
; checker with an E01xx diagnostic. See tests/check_golden.rs.
(define (power x n)
  (if (= n 0)
      1
      (* x (power x (- n 1)))))
