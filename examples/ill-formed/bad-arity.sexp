; expect: E0006
; `twice` takes one argument but is called with two.
(define (twice x)
  (+ x x))
(define (main a b)
  (twice a b))
