; expect: W0002
; `spin` calls itself outside every conditional: there is no reachable
; base case, so unfolding the call can never terminate. The analyzer
; flags it structurally — no binding-time information needed.
(define (spin n)
  (spin (+ n 1)))
