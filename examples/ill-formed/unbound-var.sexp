; expect: E0004
; `y` is never bound: not a parameter of `scale`, not a `let`.
(define (scale x)
  (* x y))
