//! Quickstart: specialize a program with respect to a *property* rather
//! than a value — the paper's core idea.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ppe::core::facets::{SignFacet, SignVal};
use ppe::core::{AbsVal, FacetSet};
use ppe::lang::{parse_program, pretty_program};
use ppe::online::{OnlinePe, PeInput};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A piecewise function: the shape of `classify` depends only on the
    // sign of its argument.
    let program = parse_program(
        "(define (classify x)
           (if (< x 0) (penalty x) (reward x)))
         (define (penalty x) (neg (* x x)))
         (define (reward x) (* x x))",
    )?;

    println!("source program:\n{program}");

    // Conventional partial evaluation can do nothing here: x is unknown.
    let none = FacetSet::new();
    let conventional = OnlinePe::new(&program, &none).specialize_main(&[PeInput::dynamic()])?;
    println!(
        "conventional PE (x fully dynamic):\n{}",
        pretty_program(&conventional.program)
    );

    // Parameterized partial evaluation: x is unknown *but positive*.
    // The Sign facet's open operator ≺̂ decides (< x 0) = false, the
    // branch dies, and `penalty` vanishes from the residual program.
    let facets = FacetSet::with_facets(vec![Box::new(SignFacet)]);
    let pe = OnlinePe::new(&program, &facets);
    let residual =
        pe.specialize_main(&[PeInput::dynamic().with_facet("sign", AbsVal::new(SignVal::Pos))])?;
    println!(
        "parameterized PE (x dynamic but positive):\n{}",
        pretty_program(&residual.program)
    );
    println!(
        "stats: {} reductions, {} static branches, {} unfolds",
        residual.stats.reductions, residual.stats.static_branches, residual.stats.unfolds
    );
    Ok(())
}
