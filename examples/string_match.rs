//! Specializing a string matcher with respect to a static pattern — the
//! classic partial-evaluation exercise, driven here by the Contents facet.
//!
//! A naive matcher scans the subject for the pattern. The pattern is a
//! vector of character codes whose *contents* are static: every
//! `(vref p i)` and `(vsize p)` becomes a constant, the inner comparison
//! loop unrolls, and the residual is a pattern-specific matcher that never
//! touches the pattern again.
//!
//! (Full KMP-by-specialization additionally needs *positive information
//! propagation* across mismatches — see the discussion at the end of
//! Section 4.4 of the paper and `PeConfig::propagate_constraints`; the
//! naive matcher re-reads subject positions, so this example demonstrates
//! the unrolling, not the KMP jump table.)
//!
//! ```sh
//! cargo run --example string_match
//! ```

use std::time::Instant;

use ppe::core::facets::ContentsFacet;
use ppe::core::FacetSet;
use ppe::lang::{parse_program, pretty_program, prune_unused_params, Evaluator, OptLevel, Value};
use ppe::online::{OnlinePe, PeConfig, PeInput};

/// Returns the 1-based index of the first occurrence of `p` in `s` at or
/// after position `k`, or 0. The scan position `k` is a *parameter* (a
/// dynamic one) so that specialization folds the scan loop onto a single
/// pattern-specific function instead of unrolling over an unbounded
/// subject — the standard binding-time improvement for matchers.
const MATCHER: &str = "(define (match p s k)
       (if (> (+ k (vsize p)) (+ (vsize s) 1))
           0
           (if (cmp p s k 1) k (match p s (+ k 1)))))
     (define (cmp p s k i)
       (if (> i (vsize p))
           #t
           (if (= (vref p i) (vref s (+ k (- i 1))))
               (cmp p s k (+ i 1))
               #f)))";

fn chars(s: &str) -> Value {
    Value::vector(s.bytes().map(|b| Value::Int(b as i64)).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(MATCHER)?;
    let pattern = chars("aba");
    let subject = chars("abcabababcab");

    // Reference run.
    let mut ev = Evaluator::new(&program);
    let direct = ev.run_main(&[pattern.clone(), subject.clone(), Value::Int(1)])?;
    println!("match(\"aba\", \"abcabababcab\") = {direct}");
    assert_eq!(direct, Value::Int(4));

    // Specialize on the pattern: its contents are static.
    let facets = FacetSet::with_facets(vec![Box::new(ContentsFacet)]);
    let config = PeConfig::default();
    let residual = OnlinePe::with_config(&program, &facets, config).specialize_main(&[
        PeInput::known(pattern.clone()),
        PeInput::dynamic(),
        PeInput::dynamic(),
    ])?;
    // The specialized loop still threads the (dead) pattern parameter;
    // the pruning pass erases it from the residual entirely.
    let residual_program = prune_unused_params(&residual.program, OptLevel::Safe);
    let printed = pretty_program(&residual_program);
    println!("\npattern-specific matcher:\n{printed}");
    // The pattern has been consumed: no reads of `p` survive; the
    // character constants are inlined.
    assert!(!printed.contains("(vref p"), "{printed}");
    assert!(!printed.contains("(vsize p"), "{printed}");
    assert!(
        printed.contains("97"),
        "pattern byte 'a' inlined: {printed}"
    );
    assert!(
        printed.contains("98"),
        "pattern byte 'b' inlined: {printed}"
    );

    // Equivalence on a batch of subjects.
    assert!(
        !printed.contains(" p "),
        "pattern parameter pruned: {printed}"
    );
    let mut ev_res = Evaluator::new(&residual_program);
    for s in ["", "aba", "xxaba", "ab", "aab", "ababab", "zzzzzz"] {
        let expected = ev.run_main(&[pattern.clone(), chars(s), Value::Int(1)])?;
        let got = ev_res.run_main(&[chars(s), Value::Int(1)])?;
        assert_eq!(expected, got, "subject {s:?}");
        println!("subject {s:?}: {got}");
    }

    // And the specialized matcher is faster.
    let long_subject = chars(&"abcab".repeat(40));
    let reps = 2_000;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(ev.run_main(&[
            pattern.clone(),
            long_subject.clone(),
            Value::Int(1),
        ])?);
    }
    let t_generic = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(ev_res.run_main(&[long_subject.clone(), Value::Int(1)])?);
    }
    let t_special = t0.elapsed();
    println!(
        "\ngeneric: {t_generic:?}; specialized: {t_special:?} ({:.2}× faster)",
        t_generic.as_secs_f64() / t_special.as_secs_f64()
    );
    Ok(())
}
